//! The simulation runner: the event loop that connects MACs, the medium,
//! reception trackers, traffic, and metrics.
//!
//! The runner owns one [`Scheduler`] and dispatches five event kinds:
//!
//! * `Traffic` — a CBR generator enqueues a packet and re-arms itself;
//! * `MacTimer` — a timer the MAC armed fires;
//! * `TxEnd` — a node's own transmission leaves the air;
//! * `RxStart` / `RxEnd` — a transmission's leading/trailing edge reaches
//!   a listener, as sampled by the [`Medium`].
//!
//! MAC effects are applied inline: `StartTx` samples listener outcomes
//! from the medium and schedules their arrival events; timer effects
//! update the per-node timer table; delivery/classification effects feed
//! the metric accumulators. Inputs generated while applying effects (e.g.
//! the busy edge caused by a node's own transmission) are queued and
//! processed before the next scheduler pop, so the system is always
//! consistent at each instant.

use std::collections::VecDeque;

use airguard_core::monitor::MonitorReport;
use airguard_core::PairStats;
use airguard_fault::FaultPlan;
use airguard_mac::dcf::MacCounters;
use airguard_mac::{ClockDriftState, FrameRef, Mac, MacConfig, MacEffect, MacInput, TimerKind};
use airguard_metrics::{jain_index, DelayAccount, DiagnosisTally, ThroughputAccount, TimeBinned};
use airguard_obs::{
    fnv1a_hex, Category, Counter, Histogram, ObsEvent, Phase, PhaseProfiler, Registry, RunSummary,
    SpanSet,
};
use airguard_phy::reception::DecodeOutcome;
use airguard_phy::{Dbm, Fading, ListenerOutcome, Medium, PhyConfig, RxTracker, TransmissionId};
use airguard_sim::trace::Trace;
use airguard_sim::{EventId, MasterSeed, NodeId, Scheduler, SimDuration, SimTime};

use crate::faults::FaultRuntime;
use crate::node_policy::NodePolicy;
use crate::topology::Topology;
use crate::traffic::CbrState;

/// Global knobs of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Radio configuration.
    pub phy: PhyConfig,
    /// MAC configuration shared by all nodes.
    pub mac: MacConfig,
    /// Simulated time to run.
    pub horizon: SimDuration,
    /// Bin width of the diagnosis time series (Fig. 8 uses 1 s).
    pub diag_bin: SimDuration,
    /// Temporal behaviour of the shadowing deviate (the paper redraws
    /// per transmission).
    pub fading: Fading,
    /// Master seed for all randomness in the run.
    // lint:allow(digest-completeness) — the seed is the cache key's second component, deliberately excluded from the identity
    pub seed: MasterSeed,
    /// Deterministic fault-injection plan, if any. `None` (the default)
    /// leaves every fault hook inert and keeps the config digest — and
    /// therefore every cached artifact — byte-identical to builds that
    /// predate fault injection.
    pub fault: Option<FaultPlan>,
    /// Use the spatial medium (position-keyed pair sampling over a tile
    /// index) instead of the legacy dense medium. Spatial sampling draws
    /// different random streams, so the flag enters the identity — but
    /// only when set, keeping every pre-existing digest byte-identical.
    pub spatial: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            phy: PhyConfig::paper_default(),
            mac: MacConfig::default(),
            horizon: SimDuration::from_secs(50),
            diag_bin: SimDuration::from_secs(1),
            fading: Fading::PerTransmission,
            seed: MasterSeed::new(1),
            fault: None,
            spatial: false,
        }
    }
}

impl SimulationConfig {
    /// The canonical, *seed-independent* identity of this
    /// configuration: every field that shapes the run, enumerated
    /// explicitly so the digest-completeness lint can verify that no
    /// field is silently dropped. The seed is deliberately absent —
    /// it is the cache key's second component, never part of the
    /// identity (see `ScenarioConfig::identity`, which embeds this
    /// string so the two digest paths can never diverge).
    #[must_use]
    pub fn identity(&self) -> String {
        let mut id = format!(
            "phy={:?}|mac={:?}|horizon={:?}|diag_bin={:?}|fading={:?}|fault={:?}",
            self.phy, self.mac, self.horizon, self.diag_bin, self.fading, self.fault
        );
        // Appended only when set so legacy digests stay byte-identical
        // (same pattern as `ScenarioConfig::identity`'s observe_mask).
        if self.spatial {
            id.push_str("|spatial=true");
        }
        id
    }

    /// FNV-1a digest of [`Self::identity`]: the fingerprint stamped
    /// into every [`RunSummary`], shared by same-config runs
    /// regardless of seed.
    #[must_use]
    pub fn config_digest(&self) -> String {
        fnv1a_hex(self.identity().as_bytes())
    }
}

/// Execution limits for [`Simulation::run_budgeted`].
///
/// An unlimited budget (the default) reproduces [`Simulation::run`]
/// exactly. A bounded budget turns a runaway run into an `Err` instead
/// of a hang: `max_events` caps the virtual event count, and
/// `deadline_exceeded` is an external probe — typically a wall-clock
/// check installed by the experiment engine — polled every 1024 events.
/// The probe is shared (`Arc`) so one budget can be cloned across the
/// shard workers of a single run.
#[derive(Default, Clone)]
pub struct RunBudget {
    /// Maximum scheduler events to process before the watchdog trips.
    pub max_events: Option<u64>,
    /// External deadline probe; returning `true` trips the watchdog.
    pub deadline_exceeded: Option<std::sync::Arc<dyn Fn() -> bool + Send + Sync>>,
}

impl RunBudget {
    /// A budget that never trips.
    #[must_use]
    pub fn unlimited() -> Self {
        RunBudget::default()
    }
}

impl std::fmt::Debug for RunBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunBudget")
            .field("max_events", &self.max_events)
            .field("deadline_exceeded", &self.deadline_exceeded.is_some())
            .finish()
    }
}

#[derive(Debug)]
enum Event {
    Traffic {
        flow: usize,
    },
    MacTimer {
        node: usize,
        kind: TimerKind,
    },
    TxEnd {
        node: usize,
    },
    RxStart {
        listener: usize,
        tx: TransmissionId,
        power: Dbm,
        receivable: bool,
    },
    RxEnd {
        listener: usize,
        tx: TransmissionId,
        /// Shared handle: every listener's arrival event points at the
        /// same allocation as the transmitter's `on_air` slot.
        frame: FrameRef,
    },
    /// Injected fault: the node's MAC dies. Physics (frames already on
    /// the air) continue; protocol state freezes until the restart.
    NodeCrash {
        node: usize,
        preserve_monitor: bool,
    },
    /// Injected fault: the node's MAC reboots after a crash window.
    NodeRestart {
        node: usize,
    },
}

struct SimNode {
    mac: Mac<NodePolicy>,
    tracker: RxTracker,
    /// Pending timer event per [`TimerKind`], densely indexed by
    /// [`TimerKind::index`]. A flat array: timer churn is the runner's
    /// most frequent map operation.
    timers: [Option<EventId>; TimerKind::COUNT],
}

/// Identity mapping of a sharded sub-simulation back to the full run:
/// `node_ids[local]` is the local node's global id, `flow_ids[local]`
/// the local flow's global index. Both drive seed-stream derivation and
/// report labeling, so a component simulated alone produces exactly the
/// node ids, traffic jitter, and MAC streams it would inside the
/// monolithic spatial run.
#[derive(Debug, Clone)]
pub(crate) struct ShardScope {
    pub(crate) node_ids: Vec<u32>,
    pub(crate) flow_ids: Vec<usize>,
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated time covered.
    pub elapsed: SimDuration,
    /// Per-flow delivery accounting.
    pub throughput: ThroughputAccount,
    /// Per-packet diagnosis outcomes vs ground truth.
    pub tally: DiagnosisTally,
    /// Diagnosis outcomes of misbehaving senders over time (Fig. 8).
    pub series: TimeBinned,
    /// Per-sender MAC delay (enqueue to ACK) of acknowledged packets.
    pub delays: DelayAccount,
    /// Senders of measured flows.
    pub measured_senders: Vec<NodeId>,
    /// Measured (src, dst) flow pairs.
    pub measured_flows: Vec<(NodeId, NodeId)>,
    /// Ground-truth misbehaving nodes.
    pub misbehaving: Vec<NodeId>,
    /// Per-node MAC counters (indexed by node id).
    pub counters: Vec<MacCounters>,
    /// Monitor reports of modified-protocol nodes.
    pub monitors: Vec<(NodeId, MonitorReport)>,
    /// Per-node receiver-assignment violations detected by the §4.4
    /// `g` check (modified-protocol nodes with verification enabled).
    pub receiver_violations: Vec<(NodeId, u64)>,
    /// Third-party observation reports (nodes with the observer
    /// extension enabled).
    pub observers: Vec<(NodeId, Vec<PairStats>)>,
    /// Total scheduler events processed.
    pub events: u64,
    /// Deterministic telemetry summary (config digest, seed, virtual
    /// time, counter and histogram snapshot); `summary.to_json()` is
    /// the exportable per-run report line.
    pub summary: RunSummary,
}

impl RunReport {
    /// The diagnosis tally (correct-diagnosis % and misdiagnosis %).
    #[must_use]
    pub fn diagnosis(&self) -> &DiagnosisTally {
        &self.tally
    }

    /// Mean throughput of misbehaving measured senders, bit/s ("MSB").
    #[must_use]
    pub fn msb_throughput_bps(&self) -> f64 {
        let msb: Vec<NodeId> = self
            .measured_senders
            .iter()
            .copied()
            .filter(|s| self.misbehaving.contains(s))
            .collect();
        self.throughput
            .mean_sender_throughput_bps(&msb, self.elapsed)
    }

    /// Mean throughput of well-behaved measured senders, bit/s ("AVG").
    #[must_use]
    pub fn avg_throughput_bps(&self) -> f64 {
        let wb: Vec<NodeId> = self
            .measured_senders
            .iter()
            .copied()
            .filter(|s| !self.misbehaving.contains(s))
            .collect();
        self.throughput
            .mean_sender_throughput_bps(&wb, self.elapsed)
    }

    /// Mean MAC delay (ms) of misbehaving measured senders.
    #[must_use]
    pub fn msb_delay_ms(&self) -> f64 {
        let msb: Vec<NodeId> = self
            .measured_senders
            .iter()
            .copied()
            .filter(|s| self.misbehaving.contains(s))
            .collect();
        self.delays.mean_ms_over(&msb)
    }

    /// Mean MAC delay (ms) of well-behaved measured senders.
    #[must_use]
    pub fn avg_delay_ms(&self) -> f64 {
        let wb: Vec<NodeId> = self
            .measured_senders
            .iter()
            .copied()
            .filter(|s| !self.misbehaving.contains(s))
            .collect();
        self.delays.mean_ms_over(&wb)
    }

    /// Jain's fairness index over the measured flows.
    #[must_use]
    pub fn fairness_index(&self) -> f64 {
        let t = self
            .throughput
            .flow_throughputs_bps(&self.measured_flows, self.elapsed);
        jain_index(&t)
    }
}

/// One wired-up simulation, ready to run.
pub struct Simulation {
    cfg: SimulationConfig,
    sched: Scheduler<Event>,
    medium: Medium,
    nodes: Vec<SimNode>,
    cbr: Vec<CbrState>,
    misbehaving: Vec<NodeId>,
    measured_senders: Vec<NodeId>,
    measured_flows: Vec<(NodeId, NodeId)>,
    throughput: ThroughputAccount,
    tally: DiagnosisTally,
    series: TimeBinned,
    delays: DelayAccount,
    trace: Trace,
    registry: Registry,
    deviation_hist: Histogram,
    diagnosis_flags: Counter,
    pending: VecDeque<(usize, MacInput)>,
    /// Reused MAC-effect buffer (see [`Mac::handle_into`]).
    fx_scratch: Vec<MacEffect>,
    /// Reused listener-outcome buffer (see [`Medium::sample_tx`]).
    listeners_scratch: Vec<ListenerOutcome>,
    /// Mutable fault-injection state (inert when no plan is set).
    faults: FaultRuntime,
    /// Hot-loop phase timers; disabled by default (one relaxed load
    /// per scope, see [`PhaseProfiler`]).
    profiler: PhaseProfiler,
    /// Global node id per local index (identity for unscoped runs).
    node_ids: Vec<u32>,
    /// Local index of each flow's source node.
    cbr_src_local: Vec<usize>,
}

impl Simulation {
    /// Wires up a simulation over `topology` (taken by value — the
    /// runner owns the positions), with `policies[i]` the policy of node
    /// `i` and `misbehaving` the ground-truth cheater set.
    ///
    /// # Panics
    ///
    /// Panics if `policies` does not have one entry per topology node.
    #[must_use]
    pub fn new(
        cfg: SimulationConfig,
        topology: Topology,
        policies: Vec<NodePolicy>,
        misbehaving: Vec<NodeId>,
    ) -> Self {
        Simulation::new_scoped(cfg, topology, policies, misbehaving, None)
    }

    /// Like [`Simulation::new`], but over one component of a sharded
    /// run: `scope` maps local node/flow indices back to their global
    /// identities so seed streams, reports, and traces are those of the
    /// monolithic run restricted to this component.
    pub(crate) fn new_scoped(
        cfg: SimulationConfig,
        topology: Topology,
        policies: Vec<NodePolicy>,
        misbehaving: Vec<NodeId>,
        scope: Option<ShardScope>,
    ) -> Self {
        assert_eq!(
            policies.len(),
            topology.node_count(),
            "one policy per node required"
        );
        let (node_ids, flow_ids) = match scope {
            Some(s) => (s.node_ids, s.flow_ids),
            None => (
                (0..topology.node_count() as u32).collect(),
                (0..topology.flows.len()).collect(),
            ),
        };
        assert_eq!(node_ids.len(), topology.node_count(), "one id per node");
        assert_eq!(flow_ids.len(), topology.flows.len(), "one id per flow");
        let local_of: std::collections::BTreeMap<u32, usize> = node_ids
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local))
            .collect();
        let cbr_src_local: Vec<usize> = topology
            .flows
            .iter()
            .map(|f| local_of[&f.src.value()])
            .collect();
        let measured_senders = topology.measured_senders();
        let measured_flows = topology.measured_flow_pairs();
        let mut medium = if cfg.spatial {
            Medium::new_spatial(
                cfg.phy,
                topology.positions,
                node_ids.clone(),
                cfg.seed,
                true,
            )
        } else {
            Medium::new(cfg.phy, topology.positions, cfg.seed.stream("phy", 0))
        };
        medium.set_fading(cfg.fading);
        let mut nodes: Vec<SimNode> = policies
            .into_iter()
            .enumerate()
            .map(|(i, policy)| SimNode {
                mac: Mac::new(
                    NodeId::new(node_ids[i]),
                    cfg.mac.clone(),
                    policy,
                    cfg.seed.stream("mac", u64::from(node_ids[i])),
                ),
                tracker: RxTracker::new(cfg.phy.capture),
                timers: [None; TimerKind::COUNT],
            })
            .collect();
        let mut sched = Scheduler::new();
        let cbr: Vec<CbrState> = topology
            .flows
            .iter()
            .zip(&flow_ids)
            .map(|(&flow, &gid)| CbrState::new(flow, gid, cfg.seed))
            .collect();
        for (i, state) in cbr.iter().enumerate() {
            sched.schedule_at(SimTime::ZERO + state.start, Event::Traffic { flow: i });
        }
        let faults = FaultRuntime::new(cfg.fault.as_ref(), nodes.len(), cfg.seed);
        if let Some(plan) = &cfg.fault {
            if let Some(burst) = plan.burst_loss {
                medium.set_burst_loss(burst, cfg.seed);
            }
            if let Some(drift) = &plan.clock_drift {
                let state = ClockDriftState::new(drift.per_mille);
                if drift.nodes.is_empty() {
                    for node in &mut nodes {
                        node.mac.set_clock_drift(state);
                    }
                } else {
                    for &node in &drift.nodes {
                        if let Some(n) = nodes.get_mut(node as usize) {
                            n.mac.set_clock_drift(state);
                        }
                    }
                }
            }
            for crash in &plan.churn {
                let node = crash.node as usize;
                sched.schedule_at(
                    SimTime::ZERO + crash.at,
                    Event::NodeCrash {
                        node,
                        preserve_monitor: crash.preserve_monitor,
                    },
                );
                sched.schedule_at(
                    SimTime::ZERO + crash.at + crash.down_for,
                    Event::NodeRestart { node },
                );
            }
        }
        // For sub-second horizons the series degenerates to a single bin.
        let series = TimeBinned::new(cfg.diag_bin.min(cfg.horizon), cfg.horizon);
        let registry = Registry::new();
        // Deviation buckets in slots: 0 is the well-behaved bucket, the
        // ladder covers the paper's penalty range, overflow is extreme
        // cheating.
        let deviation_hist = registry.histogram(
            "obs.backoff_deviation_slots",
            &[0, 1, 2, 4, 8, 16, 32, 64, 128],
        );
        // Looked up once: Registry::counter allocates its key on every
        // call, and this one fires per classification on the hot path.
        let diagnosis_flags = registry.counter("mac.diagnosis_flags");
        Simulation {
            medium,
            nodes,
            sched,
            cbr,
            tally: DiagnosisTally::new(misbehaving.iter().copied()),
            misbehaving,
            measured_senders,
            measured_flows,
            throughput: ThroughputAccount::new(),
            series,
            delays: DelayAccount::new(),
            trace: Trace::new(),
            registry,
            deviation_hist,
            diagnosis_flags,
            pending: VecDeque::new(), // lint:allow(bounded-channel) — drained every tick; holds at most one MacInput per node
            fx_scratch: Vec::new(),
            listeners_scratch: Vec::new(),
            faults,
            profiler: PhaseProfiler::new(),
            node_ids,
            cbr_src_local,
            cfg,
        }
    }

    /// Attaches a trace sink to the runner and every node (MAC and
    /// reception tracker alike, so PHY collision/decode events land in
    /// the same stream).
    pub fn set_trace(&mut self, trace: Trace) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.mac.set_trace(trace.clone());
            node.tracker
                .set_trace(trace.clone(), NodeId::new(self.node_ids[i]));
        }
        self.trace = trace;
    }

    /// The run's metrics registry. Callers may register additional
    /// counters before `run`; everything lands in the report summary.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Attaches a phase profiler. Clones share accumulators, so the
    /// caller keeps a handle and reads totals after the run; wall time
    /// stays out of every deterministic export (DESIGN.md §9).
    pub fn set_profiler(&mut self, profiler: PhaseProfiler) {
        self.profiler = profiler;
    }

    /// The runner's phase profiler (disabled unless a caller enabled
    /// it or installed one via [`Simulation::set_profiler`]).
    #[must_use]
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.profiler
    }

    /// Runs to the configured horizon and reports.
    #[must_use]
    pub fn run(self) -> RunReport {
        match self.run_budgeted(&RunBudget::unlimited()) {
            Ok(report) => report,
            // lint:allow(panic-macro) — an unlimited budget has no trip condition, so this arm cannot run
            Err(watchdog) => unreachable!("{watchdog}"),
        }
    }

    /// Runs to the configured horizon unless `budget` trips first.
    ///
    /// On a trip the partially-executed run is abandoned and an error
    /// describing the watchdog condition (events processed, virtual
    /// time reached) is returned — callers must not cache or report a
    /// tripped run as a result.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the event budget is exhausted or the deadline
    /// probe fires.
    pub fn run_budgeted(mut self, budget: &RunBudget) -> Result<RunReport, String> {
        let horizon = SimTime::ZERO + self.cfg.horizon;
        let mut processed: u64 = 0;
        // Detached handle: the guard must not borrow `self` across the
        // `&mut self` dispatch calls below.
        let profiler = self.profiler.clone();
        loop {
            let popped = {
                let _pop = profiler.scope(Phase::SchedulerPop);
                match self.sched.peek_time() {
                    Some(t) if t <= horizon => self.sched.pop(),
                    _ => None,
                }
            };
            let Some((now, event)) = popped else { break };
            self.dispatch(now, event);
            self.drain_pending(now);
            processed += 1;
            if let Some(max) = budget.max_events {
                if processed >= max {
                    return Err(format!(
                        "watchdog: virtual event budget exhausted after {processed} events \
                         (sim time {now}, horizon {horizon})"
                    ));
                }
            }
            if processed.is_multiple_of(1024) {
                if let Some(probe) = &budget.deadline_exceeded {
                    if probe() {
                        return Err(format!(
                            "watchdog: wall-clock deadline exceeded after {processed} events \
                             (sim time {now}, horizon {horizon})"
                        ));
                    }
                }
            }
        }
        let events = self.sched.events_processed();
        let counters: Vec<MacCounters> = self.nodes.iter().map(|n| n.mac.counters()).collect();
        self.registry.counter("sim.events_dispatched").add(events);
        let mac_totals = counters.iter().fold(MacCounters::default(), |mut acc, c| {
            acc.rts_sent += c.rts_sent;
            acc.cts_timeouts += c.cts_timeouts;
            acc.ack_timeouts += c.ack_timeouts;
            acc.retry_drops += c.retry_drops;
            acc.queue_drops += c.queue_drops;
            acc.duplicates += c.duplicates;
            acc
        });
        self.registry
            .counter("mac.rts_sent")
            .add(mac_totals.rts_sent);
        self.registry
            .counter("mac.retries")
            .add(mac_totals.cts_timeouts + mac_totals.ack_timeouts);
        self.registry
            .counter("mac.retry_drops")
            .add(mac_totals.retry_drops);
        self.registry
            .counter("mac.duplicates")
            .add(mac_totals.duplicates);
        // With a sink carrying both the handshake and the monitor
        // streams, fold the records into per-station spans and record
        // onset→penalty/diagnosis latencies. Virtual-time only, so the
        // histograms are as deterministic as every other metric; runs
        // without an enabled sink skip this and keep the exact summary
        // shape they had before causal tracing existed.
        let sink = self.trace.sink();
        if sink.wants(Category::MacTx) && sink.wants(Category::Monitor) {
            // Histograms are named after the deviation detector the
            // monitors ran, so detector sweeps keep their reaction-time
            // distributions apart (the window detector keeps the
            // original unqualified names).
            let detector = self
                .nodes
                .iter()
                .find_map(|n| n.mac.policy().detector_kind())
                .unwrap_or("window");
            SpanSet::from_records(&sink.records())
                .record_detection_latencies_for(&self.registry, detector);
        }
        let summary = RunSummary::new(
            "sim",
            self.cfg.seed.value(),
            self.cfg.config_digest(),
            self.cfg.horizon.as_micros(),
        )
        .with_metrics(self.registry.snapshot());
        Ok(RunReport {
            elapsed: self.cfg.horizon,
            throughput: self.throughput,
            tally: self.tally,
            series: self.series,
            delays: self.delays,
            measured_senders: self.measured_senders,
            measured_flows: self.measured_flows,
            misbehaving: self.misbehaving,
            counters,
            monitors: self
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(i, n)| {
                    n.mac
                        .policy()
                        .monitor_report()
                        .map(|r| (NodeId::new(self.node_ids[i]), r))
                })
                .collect(),
            receiver_violations: self
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(i, n)| {
                    n.mac
                        .policy()
                        .receiver_violations()
                        .map(|v| (NodeId::new(self.node_ids[i]), v))
                })
                .collect(),
            observers: self
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(i, n)| {
                    n.mac
                        .policy()
                        .observer_report()
                        .map(|r| (NodeId::new(self.node_ids[i]), r))
                })
                .collect(),
            events,
            summary,
        })
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Traffic { flow } => {
                let state = self.cbr[flow];
                // Flow endpoints are global ids; the pending queue wants
                // the local node index. Destinations stay global — the
                // MAC frames carry them verbatim.
                self.pending.push_back((
                    self.cbr_src_local[flow],
                    MacInput::Enqueue {
                        dst: state.flow.dst,
                        bytes: state.flow.payload,
                    },
                ));
                self.sched
                    .schedule_in(state.interval, Event::Traffic { flow });
            }
            Event::MacTimer { node, kind } => {
                self.nodes[node].timers[kind.index()] = None;
                self.pending.push_back((node, MacInput::Timer(kind)));
            }
            Event::TxEnd { node } => {
                // Deliver the protocol event before the channel edge so
                // e.g. the ACK-end monitor snapshot is taken while the
                // counter still shows the banked (pre-idle) reading.
                self.pending.push_back((node, MacInput::OwnTxEnd));
                if self.nodes[node].tracker.on_self_tx_end(now).is_some() {
                    self.pending.push_back((node, MacInput::ChannelIdle));
                }
            }
            Event::RxStart {
                listener,
                tx,
                power,
                receivable,
            } => {
                if self.nodes[listener]
                    .tracker
                    .on_arrival(now, tx, power, receivable)
                    .is_some()
                {
                    self.pending.push_back((listener, MacInput::ChannelBusy));
                }
            }
            Event::RxEnd {
                listener,
                tx,
                frame,
            } => {
                let (edge, decode) = self.nodes[listener].tracker.on_departure(now, tx);
                if decode == Some(DecodeOutcome::Decoded) {
                    self.pending.push_back((listener, MacInput::Decoded(frame)));
                }
                if edge.is_some() {
                    self.pending.push_back((listener, MacInput::ChannelIdle));
                }
            }
            Event::NodeCrash {
                node,
                preserve_monitor,
            } => {
                if self.faults.on_crash(node, preserve_monitor, now) {
                    // Disarm every pending MAC timer; frames already on
                    // the air keep propagating (the reception tracker
                    // stays live), but no protocol input reaches the
                    // dead MAC until the restart resets it.
                    for slot in &mut self.nodes[node].timers {
                        if let Some(id) = slot.take() {
                            self.sched.cancel(id);
                        }
                    }
                    self.trace.emit(
                        now,
                        NodeId::new(self.node_ids[node]),
                        ObsEvent::FaultNodeDown {
                            cold: !preserve_monitor,
                        },
                    );
                }
            }
            Event::NodeRestart { node } => {
                if let Some((downtime, preserve)) = self.faults.on_restart(node, now) {
                    self.nodes[node].mac.crash_reset(now);
                    self.nodes[node].mac.policy_mut().fault_reset(preserve);
                    // The reset assumes an idle channel; if a carrier is
                    // on the air right now, replay the busy edge.
                    if self.nodes[node].tracker.is_busy() {
                        self.pending.push_back((node, MacInput::ChannelBusy));
                    }
                    self.trace.emit(
                        now,
                        NodeId::new(self.node_ids[node]),
                        ObsEvent::FaultNodeUp {
                            downtime_us: downtime.as_micros(),
                        },
                    );
                }
            }
        }
    }

    fn drain_pending(&mut self, now: SimTime) {
        // The effect buffer is detached from `self` while effects are
        // applied (apply() may push new pending inputs) and re-attached
        // after, so its capacity is reused across the whole run.
        let mut fx = std::mem::take(&mut self.fx_scratch);
        while let Some((node, input)) = self.pending.pop_front() {
            // A crashed node's MAC is gated off: traffic enqueues,
            // channel edges, and decoded frames all evaporate until the
            // restart. Flow generators keep re-arming, so traffic
            // resumes by itself once the node is back.
            if self.faults.is_down(node) {
                continue;
            }
            fx.clear();
            {
                let _mac = self.profiler.scope(Phase::MacStep);
                self.nodes[node].mac.handle_into(now, input, &mut fx);
            }
            for effect in fx.drain(..) {
                self.apply(now, node, effect);
            }
        }
        self.fx_scratch = fx;
    }

    fn apply(&mut self, now: SimTime, node: usize, effect: MacEffect) {
        match effect {
            MacEffect::StartTx(frame) => {
                let _prop = self.profiler.scope(Phase::MediumPropagation);
                let air = frame.air_time(&self.cfg.mac.timing);
                let mut listeners = std::mem::take(&mut self.listeners_scratch);
                let tx = self
                    .medium
                    .sample_tx(NodeId::new(node as u32), &mut listeners);
                if self.nodes[node].tracker.on_self_tx_start(now).is_some() {
                    self.pending.push_back((node, MacInput::ChannelBusy));
                }
                self.sched.schedule_at(now + air, Event::TxEnd { node });
                for l in &listeners {
                    self.sched.schedule_at(
                        now + l.delay,
                        Event::RxStart {
                            listener: l.listener.index(),
                            tx,
                            power: l.power,
                            receivable: l.receivable,
                        },
                    );
                    // The medium reports listeners by local index;
                    // traces label them with their global identity.
                    let listener_gid = NodeId::new(self.node_ids[l.listener.index()]);
                    if l.fault_lost {
                        self.trace.emit(
                            now,
                            listener_gid,
                            ObsEvent::FaultFrameLost {
                                listener: listener_gid.value(),
                                tx: tx.value(),
                            },
                        );
                    }
                    // Corruption only matters where the frame will be
                    // decoded; non-receivable copies are noise either way.
                    let delivered = if l.receivable {
                        match self.faults.corrupt(&frame) {
                            Some((mutated, outcome)) => {
                                self.trace.emit(
                                    now,
                                    listener_gid,
                                    outcome.event(listener_gid.value()),
                                );
                                FrameRef::new(mutated)
                            }
                            None => frame.share(),
                        }
                    } else {
                        frame.share()
                    };
                    self.sched.schedule_at(
                        now + l.delay + air,
                        Event::RxEnd {
                            listener: l.listener.index(),
                            tx,
                            frame: delivered,
                        },
                    );
                }
                self.listeners_scratch = listeners;
            }
            MacEffect::SetTimer { kind, after } => {
                let id = self
                    .sched
                    .schedule_at(now + after, Event::MacTimer { node, kind });
                if let Some(old) = self.nodes[node].timers[kind.index()].replace(id) {
                    self.sched.cancel(old);
                }
            }
            MacEffect::CancelTimer(kind) => {
                if let Some(id) = self.nodes[node].timers[kind.index()].take() {
                    self.sched.cancel(id);
                }
            }
            MacEffect::Delivered { src, bytes, .. } => {
                self.throughput
                    .record(src, NodeId::new(self.node_ids[node]), bytes);
            }
            MacEffect::Classified { src, verdict } => {
                let _mon = self.profiler.scope(Phase::MonitorStep);
                // Deviation is a non-negative slot count; quantise to the
                // histogram's integer buckets.
                self.deviation_hist
                    .record(verdict.deviation_slots.max(0.0).round() as u64);
                if verdict.flagged {
                    self.diagnosis_flags.inc();
                }
                self.tally.record(src, verdict.flagged);
                if self.tally.is_misbehaving(src) {
                    self.series.record(now, verdict.flagged);
                }
            }
            MacEffect::SendComplete { delay, .. } => {
                self.delays.record(NodeId::new(self.node_ids[node]), delay);
            }
            MacEffect::Dropped { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Flow;
    use airguard_mac::Selfish;

    fn single_sender_topology() -> Topology {
        Topology {
            positions: vec![
                airguard_phy::Position::new(0.0, 0.0),
                airguard_phy::Position::new(150.0, 0.0),
            ],
            flows: vec![Flow {
                src: NodeId::new(1),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            }],
        }
    }

    fn quick_cfg(seed: u64, secs: u64) -> SimulationConfig {
        SimulationConfig {
            phy: PhyConfig::deterministic(),
            horizon: SimDuration::from_secs(secs),
            seed: MasterSeed::new(seed),
            ..SimulationConfig::default()
        }
    }

    fn dot11_policies(n: usize) -> Vec<NodePolicy> {
        (0..n).map(|_| NodePolicy::dot11(Selfish::None)).collect()
    }

    #[test]
    fn single_sender_saturates_the_channel() {
        let topo = single_sender_topology();
        let sim = Simulation::new(quick_cfg(1, 5), topo, dot11_policies(2), vec![]);
        let report = sim.run();
        let bps = report
            .throughput
            .sender_throughput_bps(NodeId::new(1), report.elapsed);
        // Analytic saturation throughput of one RTS/CTS sender at 2 Mb/s:
        // DIFS + E[backoff]·slot + RTS + SIFS + CTS + SIFS + DATA + SIFS
        // + ACK ≈ 3510 µs per 512-byte packet ⇒ ≈ 1.17 Mb/s.
        assert!(
            (1.0e6..1.3e6).contains(&bps),
            "single-sender throughput {bps} b/s out of expected band"
        );
    }

    #[test]
    fn two_senders_share_roughly_equally() {
        let topo = Topology::star(2, 2_000_000, 512, false);
        let sim = Simulation::new(quick_cfg(2, 5), topo, dot11_policies(3), vec![]);
        let report = sim.run();
        let t1 = report
            .throughput
            .sender_throughput_bps(NodeId::new(1), report.elapsed);
        let t2 = report
            .throughput
            .sender_throughput_bps(NodeId::new(2), report.elapsed);
        assert!(t1 > 0.0 && t2 > 0.0);
        let ratio = t1.max(t2) / t1.min(t2);
        assert!(ratio < 1.3, "unfair split {t1} vs {t2}");
        assert!(report.fairness_index() > 0.95);
    }

    #[test]
    fn eight_senders_split_the_channel() {
        let topo = Topology::star(8, 2_000_000, 512, false);
        let sim = Simulation::new(quick_cfg(3, 5), topo, dot11_policies(9), vec![]);
        let report = sim.run();
        let avg = report.avg_throughput_bps();
        // 8-way split of ~1.1-1.2 Mb/s aggregate, minus collision losses.
        assert!(
            (90_000.0..190_000.0).contains(&avg),
            "avg per-sender throughput {avg}"
        );
        assert!(
            report.fairness_index() > 0.9,
            "fi={}",
            report.fairness_index()
        );
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let topo = Topology::star(4, 2_000_000, 512, false);
        let a = Simulation::new(quick_cfg(7, 2), topo.clone(), dot11_policies(5), vec![]).run();
        let b = Simulation::new(quick_cfg(7, 2), topo.clone(), dot11_policies(5), vec![]).run();
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.events, b.events);
        let c = Simulation::new(quick_cfg(8, 2), topo, dot11_policies(5), vec![]).run();
        assert_ne!(a.throughput, c.throughput, "different seed, different run");
    }

    #[test]
    #[should_panic(expected = "one policy per node")]
    fn policy_count_must_match() {
        let topo = single_sender_topology();
        let _ = Simulation::new(quick_cfg(1, 1), topo, dot11_policies(1), vec![]);
    }

    #[test]
    fn event_budget_trips_the_watchdog() {
        let topo = Topology::star(2, 2_000_000, 512, false);
        let sim = Simulation::new(quick_cfg(4, 5), topo, dot11_policies(3), vec![]);
        let budget = RunBudget {
            max_events: Some(50),
            deadline_exceeded: None,
        };
        let err = sim.run_budgeted(&budget).unwrap_err();
        assert!(err.contains("watchdog"), "unexpected trip message: {err}");
        assert!(
            err.contains("50 events"),
            "trip must report progress: {err}"
        );
    }

    #[test]
    fn deadline_probe_trips_the_watchdog() {
        let topo = Topology::star(2, 2_000_000, 512, false);
        let sim = Simulation::new(quick_cfg(4, 5), topo, dot11_policies(3), vec![]);
        let budget = RunBudget {
            max_events: None,
            deadline_exceeded: Some(std::sync::Arc::new(|| true)),
        };
        let err = sim.run_budgeted(&budget).unwrap_err();
        assert!(err.contains("deadline"), "unexpected trip message: {err}");
    }

    #[test]
    fn unlimited_budget_matches_plain_run() {
        let topo = Topology::star(2, 2_000_000, 512, false);
        let a = Simulation::new(quick_cfg(5, 2), topo.clone(), dot11_policies(3), vec![])
            .run_budgeted(&RunBudget::unlimited())
            .unwrap();
        let b = Simulation::new(quick_cfg(5, 2), topo, dot11_policies(3), vec![]).run();
        assert_eq!(a.summary.to_json(), b.summary.to_json());
    }

    fn churn_cfg(seed: u64) -> SimulationConfig {
        SimulationConfig {
            fault: Some(airguard_fault::FaultPlan {
                churn: vec![airguard_fault::CrashEvent {
                    node: 1,
                    at: SimDuration::from_secs(1),
                    down_for: SimDuration::from_secs(2),
                    preserve_monitor: false,
                }],
                ..airguard_fault::FaultPlan::default()
            }),
            ..quick_cfg(seed, 5)
        }
    }

    #[test]
    fn crashed_sender_goes_dark_then_resumes() {
        let topo = single_sender_topology();
        let faulted = Simulation::new(churn_cfg(9), topo.clone(), dot11_policies(2), vec![]).run();
        let clean = Simulation::new(quick_cfg(9, 5), topo, dot11_policies(2), vec![]).run();
        let faulted_bytes = faulted.throughput.total_bytes();
        let clean_bytes = clean.throughput.total_bytes();
        assert!(
            faulted_bytes > 0,
            "traffic must resume after the restart (got {faulted_bytes} bytes)"
        );
        // 2 of 5 seconds down: deliveries land well below the clean run
        // but clearly above a run that never came back.
        assert!(
            faulted_bytes < clean_bytes * 4 / 5,
            "outage should cost throughput: {faulted_bytes} vs {clean_bytes}"
        );
        assert!(
            faulted_bytes > clean_bytes * 2 / 5,
            "restart should restore throughput: {faulted_bytes} vs {clean_bytes}"
        );
    }

    #[test]
    fn churn_emits_down_and_up_events() {
        let topo = single_sender_topology();
        let mut sim = Simulation::new(churn_cfg(9), topo, dot11_policies(2), vec![]);
        let trace = Trace::enabled();
        sim.set_trace(trace.clone());
        let _ = sim.run();
        let faults = trace.events_in("fault");
        assert!(
            faults.iter().any(|e| e.detail.contains("crashed")),
            "missing node-down event in {faults:?}"
        );
        assert!(
            faults.iter().any(|e| e.detail.contains("restarted")),
            "missing node-up event in {faults:?}"
        );
    }

    #[test]
    fn faulted_runs_are_reproducible_and_differ_from_clean() {
        let topo = single_sender_topology();
        let a = Simulation::new(churn_cfg(9), topo.clone(), dot11_policies(2), vec![]).run();
        let b = Simulation::new(churn_cfg(9), topo.clone(), dot11_policies(2), vec![]).run();
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        let clean = Simulation::new(quick_cfg(9, 5), topo, dot11_policies(2), vec![]).run();
        assert_ne!(
            a.summary.config_digest, clean.summary.config_digest,
            "a fault plan must change the config digest"
        );
    }
}
