//! Canned scenarios reproducing the paper's evaluation settings.

use airguard_core::{CorrectConfig, DetectorConfig};
use airguard_fault::FaultPlan;
use airguard_mac::{AccessMode, MacConfig, Selfish};
use airguard_obs::{EventSink, PhaseProfiler};
use airguard_phy::{Fading, PhyConfig};
use airguard_sim::trace::{Trace, TraceEvent};
use airguard_sim::{MasterSeed, NodeId, SimDuration};
use rand::RngExt;

use crate::node_policy::NodePolicy;
use crate::runner::{RunBudget, RunReport, Simulation, SimulationConfig};
use crate::topology::Topology;

/// Which of the paper's evaluation settings to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandardScenario {
    /// Fig. 3 with flows A–B and C–D turned off: 8 (configurable)
    /// senders around one receiver.
    ZeroFlow,
    /// Fig. 3 with both interferer flows on: the carrier-sense asymmetry
    /// setting.
    TwoFlow,
    /// Fig. 9: 40 nodes at random positions in 1500 m × 700 m, each with
    /// a CBR flow to a neighbor, 5 random misbehavers.
    Random,
    /// Scaling topology: a square lattice at 200 m spacing with flows to
    /// grid neighbors. Node count comes from `random_nodes`. Under the
    /// ~1.1 km interference cutoff a grid is one connected component,
    /// so it exercises the spatial medium without decomposition.
    Grid,
    /// Scaling topology: clusters of 40 nodes spaced 3 km apart — far
    /// beyond the interference cutoff, so every cluster is its own
    /// component and sharded runs parallelise. `random_nodes` sets the
    /// total node budget (rounded down to whole clusters).
    Campus,
    /// Scaling topology: concentric seating rings around a 50 m court —
    /// a single dense connected component at stadium densities.
    Stadium,
}

/// Grid lattice spacing in meters (within carrier-sense range of the
/// four neighbors, so the lattice is one interference component).
pub const GRID_SPACING_M: f64 = 200.0;
/// Nodes per campus cluster.
pub const CAMPUS_PER_CLUSTER: usize = 40;
/// Campus cluster spacing in meters — chosen beyond the ~1.1 km
/// interference cutoff so clusters decompose into independent shards.
pub const CAMPUS_SPACING_M: f64 = 3_000.0;
/// Stadium court (inner ring) radius in meters.
pub const STADIUM_INNER_RADIUS_M: f64 = 50.0;

/// Which protocol the whole network runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Unmodified IEEE 802.11 DCF.
    Dot11,
    /// The paper's receiver-assigned-backoff protocol ("CORRECT").
    Correct,
}

/// Builder for one simulation run of a standard scenario.
///
/// Defaults follow §5: 8 senders, 512-byte packets at 2 Mb/s (backlogged),
/// 50 s simulated time, node 3 misbehaving (when a strategy is set),
/// W = 5, THRESH = 20, α = 0.9.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    scenario: StandardScenario,
    protocol: Protocol,
    n_senders: usize,
    strategy: Selfish,
    misbehaving_override: Option<Vec<NodeId>>,
    sim_time: SimDuration,
    seed: u64,
    payload: u32,
    rate_bps: u64,
    correct_cfg: CorrectConfig,
    /// Which [`DeviationDetector`](airguard_core::DeviationDetector)
    /// the modified protocol's monitors run. Lives beside (not inside)
    /// `correct_cfg` because that struct is Debug-formatted into the
    /// identity — a new field there would shift every historical
    /// digest. The default (window) detector is normalised out of the
    /// identity instead (see [`Self::identity`]).
    detector: DetectorConfig,
    mac: MacConfig,
    phy: PhyConfig,
    random_nodes: usize,
    random_area: (f64, f64),
    random_misbehaving: usize,
    fading: Fading,
    fault: Option<FaultPlan>,
    /// Telemetry category bitmask recorded during engine runs; zero
    /// (the default) attaches no sink. A non-zero mask enters the
    /// identity: an observed run folds span-derived histograms into its
    /// summary, so it must never share a cache entry with a blind run.
    observe_mask: u32,
    /// Run on the spatial (tile-indexed, pair-keyed) medium and shard
    /// the run by interference component. Enters the identity through
    /// [`SimulationConfig::identity`].
    spatial: bool,
    /// Worker threads for sharded spatial runs. Purely an execution
    /// knob: the merged report is byte-identical at any worker count,
    /// so — like the seed — it must never enter the identity.
    // lint:allow(digest-completeness) — worker count cannot change any result byte, by the shard merge contract
    shard_workers: usize,
}

impl ScenarioConfig {
    /// Creates the default configuration for `scenario`.
    #[must_use]
    pub fn new(scenario: StandardScenario) -> Self {
        ScenarioConfig {
            scenario,
            protocol: Protocol::Correct,
            n_senders: 8,
            strategy: Selfish::None,
            misbehaving_override: None,
            sim_time: SimDuration::from_secs(50),
            seed: 1,
            payload: 512,
            rate_bps: 2_000_000,
            correct_cfg: CorrectConfig::paper_default(),
            detector: DetectorConfig::default(),
            mac: MacConfig::default(),
            phy: PhyConfig::paper_default(),
            random_nodes: 40,
            random_area: (1500.0, 700.0),
            random_misbehaving: 5,
            fading: Fading::PerTransmission,
            fault: None,
            observe_mask: 0,
            spatial: false,
            shard_workers: 1,
        }
    }

    /// Selects the protocol the network runs.
    #[must_use]
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the paper's PM knob: misbehaving nodes count down only
    /// `(100 − pm) %` of each backoff. `pm = 0` means fully compliant.
    #[must_use]
    pub fn misbehavior_percent(mut self, pm: f64) -> Self {
        self.strategy = if pm <= 0.0 {
            Selfish::None
        } else {
            Selfish::BackoffScale { pm }
        };
        self
    }

    /// Sets an arbitrary selfish strategy for the misbehaving nodes.
    #[must_use]
    pub fn strategy(mut self, strategy: Selfish) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides which nodes misbehave (default: node 3 in star
    /// scenarios, 5 random flow sources in the random scenario).
    #[must_use]
    pub fn misbehaving_nodes(mut self, nodes: Vec<NodeId>) -> Self {
        self.misbehaving_override = Some(nodes);
        self
    }

    /// Number of senders in the star scenarios (Fig. 6/7 sweeps 1–64).
    #[must_use]
    pub fn n_senders(mut self, n: usize) -> Self {
        self.n_senders = n;
        self
    }

    /// Simulated seconds (the paper runs 50 s).
    #[must_use]
    pub fn sim_time_secs(mut self, secs: u64) -> Self {
        self.sim_time = SimDuration::from_secs(secs);
        self
    }

    /// The run's master seed (the paper uses a common seed set of 30).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the modified-protocol configuration (monitor parameters,
    /// extensions).
    #[must_use]
    pub fn correct_config(mut self, cfg: CorrectConfig) -> Self {
        self.correct_cfg = cfg;
        self
    }

    /// Selects the detector the modified protocol's monitors run
    /// (window diagnosis, CUSUM, or CW estimation). Non-default
    /// detectors enter the identity, so each detector sweeps its own
    /// cache cells.
    #[must_use]
    pub fn detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// The short name of the configured detector (`window`, `cusum`,
    /// `cw`) — the key per-detector histogram names derive from.
    #[must_use]
    pub fn detector_kind(&self) -> &'static str {
        self.detector.kind()
    }

    /// Replaces the radio configuration.
    #[must_use]
    pub fn phy(mut self, phy: PhyConfig) -> Self {
        self.phy = phy;
        self
    }

    /// Replaces the MAC configuration.
    #[must_use]
    pub fn mac(mut self, mac: MacConfig) -> Self {
        self.mac = mac;
        self
    }

    /// Selects the channel-access mode (RTS/CTS handshake or basic
    /// two-way access).
    #[must_use]
    pub fn access(mut self, access: AccessMode) -> Self {
        self.mac.access = access;
        self
    }

    /// Selects the shadowing fading behaviour (per-transmission, the
    /// paper's choice, or coherent per link).
    #[must_use]
    pub fn fading(mut self, fading: Fading) -> Self {
        self.fading = fading;
        self
    }

    /// Enables typed telemetry during engine runs: every run of this
    /// configuration attaches an [`EventSink`] restricted to `mask`
    /// (see [`airguard_obs::Category`] bits), and the runner folds the
    /// recorded stream into detection-latency histograms before the
    /// summary snapshot. Zero (the default) disables observation and
    /// keeps the identity byte-identical to pre-observation builds.
    #[must_use]
    pub fn observe(mut self, mask: u32) -> Self {
        self.observe_mask = mask;
        self
    }

    /// Sets the number of nodes in the random and scaling scenarios.
    #[must_use]
    pub fn random_nodes(mut self, n: usize, misbehaving: usize) -> Self {
        self.random_nodes = n;
        self.random_misbehaving = misbehaving;
        self
    }

    /// Runs on the spatial medium (tile-indexed candidate search,
    /// order-independent pair-keyed sampling) and shards the run into
    /// independent interference components. Spatial sampling draws
    /// different random streams than the dense medium, so this enters
    /// the identity; results are byte-identical at any worker count.
    #[must_use]
    pub fn spatial(mut self, on: bool) -> Self {
        self.spatial = on;
        self
    }

    /// Worker threads used to simulate a spatial run's components in
    /// parallel (ignored for non-spatial runs). Clamped to at least 1;
    /// never part of the identity.
    #[must_use]
    pub fn shard_workers(mut self, workers: usize) -> Self {
        self.shard_workers = workers.max(1);
        self
    }

    /// Attaches a deterministic fault-injection plan, validating it
    /// against the topology this configuration builds — call it *after*
    /// the topology-shaping knobs (`n_senders`, `random_nodes`, …).
    ///
    /// The plan is normalised first: components that can never fire
    /// (zero-probability loss, zero drift, …) are dropped, and a plan
    /// with nothing left becomes no plan at all, so a zero-intensity
    /// chaos run is byte-identical to the unfaulted baseline —
    /// identity, digest, trace, and summary.
    ///
    /// # Errors
    ///
    /// Returns a description of the first impossible setting: a
    /// probability outside `[0, 1]`, a crash or drift target outside
    /// the topology, a corruption probability with zero magnitude, or a
    /// drift at or below −1000 ‰.
    pub fn fault(mut self, plan: FaultPlan) -> Result<Self, String> {
        let node_count = self.build_topology().node_count();
        plan.validate(node_count)
            .map_err(|e| format!("invalid fault plan: {e}"))?;
        self.fault = plan.normalized();
        Ok(self)
    }

    /// Builds the topology this configuration will run.
    #[must_use]
    pub fn build_topology(&self) -> Topology {
        match self.scenario {
            StandardScenario::ZeroFlow => {
                Topology::star(self.n_senders, self.rate_bps, self.payload, false)
            }
            StandardScenario::TwoFlow => {
                Topology::star(self.n_senders, self.rate_bps, self.payload, true)
            }
            StandardScenario::Random => Topology::random(
                self.random_nodes,
                self.random_area.0,
                self.random_area.1,
                self.rate_bps,
                self.payload,
                MasterSeed::new(self.seed),
            ),
            StandardScenario::Grid => Topology::grid(
                self.random_nodes,
                GRID_SPACING_M,
                self.rate_bps,
                self.payload,
            ),
            StandardScenario::Campus => Topology::campus(
                (self.random_nodes / CAMPUS_PER_CLUSTER).max(1),
                CAMPUS_PER_CLUSTER,
                CAMPUS_SPACING_M,
                self.rate_bps,
                self.payload,
                MasterSeed::new(self.seed),
            ),
            StandardScenario::Stadium => Topology::stadium(
                self.random_nodes,
                STADIUM_INNER_RADIUS_M,
                self.rate_bps,
                self.payload,
            ),
        }
    }

    /// The ground-truth misbehaving set this configuration produces.
    #[must_use]
    pub fn misbehaving_set(&self, topology: &Topology) -> Vec<NodeId> {
        if self.strategy.is_none() {
            return Vec::new();
        }
        if let Some(nodes) = &self.misbehaving_override {
            return nodes.clone();
        }
        match self.scenario {
            StandardScenario::ZeroFlow | StandardScenario::TwoFlow => {
                // The paper's Fig. 3: node 3 misbehaves.
                vec![NodeId::new(3.min(self.n_senders as u32))]
            }
            StandardScenario::Random
            | StandardScenario::Grid
            | StandardScenario::Campus
            | StandardScenario::Stadium => {
                let mut rng = MasterSeed::new(self.seed).stream("misbehaving", 0);
                let mut senders = topology.measured_senders();
                let mut chosen = Vec::new();
                for _ in 0..self.random_misbehaving.min(senders.len()) {
                    let i = rng.random_range(0..senders.len());
                    chosen.push(senders.swap_remove(i));
                }
                chosen.sort();
                chosen
            }
        }
    }

    /// Runs the scenario once and reports.
    #[must_use]
    pub fn run(&self) -> RunReport {
        match self.run_internal(&RunBudget::unlimited(), None, None) {
            Ok(report) => report,
            // lint:allow(panic-macro) — an unlimited budget has no trip condition, so this arm cannot run
            Err(watchdog) => unreachable!("{watchdog}"),
        }
    }

    /// Runs the scenario once under `budget`: a tripped watchdog
    /// returns `Err` with the trip description instead of hanging.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the event budget is exhausted or the deadline
    /// probe fires (see [`RunBudget`]).
    pub fn run_budgeted(&self, budget: &RunBudget) -> Result<RunReport, String> {
        self.run_internal(budget, None, None)
    }

    /// Like [`Self::run_budgeted`] with a phase profiler attached.
    /// Clones of `profiler` share accumulators, so the caller reads
    /// totals after the run; the profiler never touches the summary.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the event budget is exhausted or the deadline
    /// probe fires (see [`RunBudget`]).
    pub fn run_budgeted_profiled(
        &self,
        budget: &RunBudget,
        profiler: PhaseProfiler,
    ) -> Result<RunReport, String> {
        self.run_internal(budget, Some(profiler), None)
    }

    /// Runs the scenario once with tracing enabled, returning the
    /// report together with the full event trace. Two runs of the same
    /// configuration must produce identical traces — the determinism
    /// regression test digests this.
    #[must_use]
    pub fn run_traced(&self) -> (RunReport, Vec<TraceEvent>) {
        let (report, sink) = self.run_observed();
        (report, Trace::from_sink(sink).events())
    }

    /// Runs the scenario once with typed telemetry enabled, returning
    /// the report together with the event sink. The sink's records are
    /// the structured counterparts of `run_traced`'s strings — export
    /// them with `airguard_obs::records_to_jsonl`.
    #[must_use]
    pub fn run_observed(&self) -> (RunReport, EventSink) {
        self.run_observed_inner(None)
    }

    /// [`Self::run_observed`] with a phase profiler attached — the one
    /// run path that yields the full causal picture: report, event
    /// stream (for the Chrome-trace exporter), and hot-loop phase
    /// totals.
    #[must_use]
    pub fn run_observed_profiled(&self, profiler: PhaseProfiler) -> (RunReport, EventSink) {
        self.run_observed_inner(Some(profiler))
    }

    fn run_observed_inner(&self, profiler: Option<PhaseProfiler>) -> (RunReport, EventSink) {
        let sink = EventSink::enabled();
        match self.run_internal(&RunBudget::unlimited(), profiler, Some(sink.clone())) {
            Ok(report) => (report, sink),
            // lint:allow(panic-macro) — an unlimited budget has no trip condition, so this arm cannot run
            Err(watchdog) => unreachable!("{watchdog}"),
        }
    }

    /// The single execution path every public `run*` method funnels
    /// into. An explicit `sink` wins over the configured observe mask;
    /// spatial configurations go through the component-sharded runner
    /// (and replay the merged record stream into the sink), everything
    /// else runs the classic monolithic simulation untouched.
    fn run_internal(
        &self,
        budget: &RunBudget,
        profiler: Option<PhaseProfiler>,
        sink: Option<EventSink>,
    ) -> Result<RunReport, String> {
        let topology = self.build_topology();
        let misbehaving = self.misbehaving_set(&topology);
        let policies = self.policies(&topology, &misbehaving);
        let sink = sink.or_else(|| {
            (self.observe_mask != 0).then(|| {
                let masked = EventSink::enabled();
                masked.set_mask(self.observe_mask);
                masked
            })
        });
        if self.spatial {
            let profiler = profiler.unwrap_or_default();
            let sink_mask = sink.as_ref().map_or(0, EventSink::mask);
            let opts = crate::shard::ShardOptions {
                workers: self.shard_workers,
                sink_mask,
                profiler,
            };
            let (report, records) = crate::shard::run_sharded(
                self.simulation_config(),
                topology,
                policies,
                misbehaving,
                &opts,
                budget,
            )?;
            if let Some(sink) = &sink {
                for record in records {
                    sink.emit(record.time_us, record.node, record.event);
                }
            }
            Ok(report)
        } else {
            let mut sim =
                Simulation::new(self.simulation_config(), topology, policies, misbehaving);
            if let Some(sink) = sink {
                sim.set_trace(Trace::from_sink(sink));
            }
            if let Some(profiler) = profiler {
                sim.set_profiler(profiler);
            }
            sim.run_budgeted(budget)
        }
    }

    /// The [`SimulationConfig`] this scenario hands to the runner.
    ///
    /// Public so the digest chain has a single source of truth: the
    /// runner stamps `simulation_config().config_digest()` into every
    /// [`RunSummary`](airguard_obs::RunSummary), and
    /// [`Self::identity`] embeds `simulation_config().identity()`, so
    /// the scenario-level and runner-level fingerprints are derived
    /// from the same field enumeration and can never diverge.
    #[must_use]
    pub fn simulation_config(&self) -> SimulationConfig {
        SimulationConfig {
            phy: self.phy,
            mac: self.mac.clone(),
            horizon: self.sim_time,
            diag_bin: SimDuration::from_secs(1),
            fading: self.fading,
            seed: MasterSeed::new(self.seed),
            fault: self.fault.clone(),
            spatial: self.spatial,
        }
    }

    /// The per-node policy vector this configuration assigns (indexed
    /// by global node id).
    fn policies(&self, topology: &Topology, misbehaving: &[NodeId]) -> Vec<NodePolicy> {
        (0..topology.node_count())
            .map(|i| {
                let id = NodeId::new(i as u32);
                let strategy = if misbehaving.contains(&id) {
                    self.strategy
                } else {
                    Selfish::None
                };
                match self.protocol {
                    Protocol::Dot11 => NodePolicy::dot11(strategy),
                    Protocol::Correct => NodePolicy::correct_with_detector(
                        id,
                        self.correct_cfg,
                        self.detector,
                        strategy,
                    ),
                }
            })
            .collect()
    }

    /// The canonical, *seed-independent* identity of this
    /// configuration. Two configurations with equal identity run the
    /// same grid point; the seed is keyed separately (the experiment
    /// engine's cache key is `(config_digest, seed)`).
    ///
    /// Every field is enumerated explicitly — the scenario-level knobs
    /// here, the runner-level knobs via the embedded
    /// [`SimulationConfig::identity`] — so the digest-completeness
    /// lint can verify that adding a config field without extending
    /// the identity is impossible. The `seed` field is consumed by
    /// [`Self::simulation_config`] (as the master-seed constructor)
    /// but normalised out of the identity string itself.
    #[must_use]
    pub fn identity(&self) -> String {
        let mut id = format!(
            "scenario={:?}|protocol={:?}|n_senders={}|strategy={:?}\
             |misbehaving_override={:?}|payload={}|rate_bps={}|correct_cfg={:?}\
             |random_nodes={}|random_area={:?}|random_misbehaving={}|sim={}",
            self.scenario,
            self.protocol,
            self.n_senders,
            self.strategy,
            self.misbehaving_override,
            self.payload,
            self.rate_bps,
            self.correct_cfg,
            self.random_nodes,
            self.random_area,
            self.random_misbehaving,
            self.simulation_config().identity(),
        );
        // Appended only when set, so every pre-observation configuration
        // keeps its exact historical identity (and cache entries). A
        // non-zero mask adds histograms to the summary, which makes the
        // observed cell a genuinely different artifact.
        if self.observe_mask != 0 {
            use std::fmt::Write as _;
            let _ = write!(id, "|observe_mask={}", self.observe_mask);
        }
        // Same appended-only-when-set rule: the default window detector
        // is what every pre-trait run used, so only the alternative
        // detectors mark the identity.
        if let Some(fragment) = self.detector.identity_fragment() {
            use std::fmt::Write as _;
            let _ = write!(id, "|detector={fragment}");
        }
        id
    }

    /// FNV-1a digest of [`Self::identity`] — the stable cache/identity
    /// hook used by `airguard-exp`.
    #[must_use]
    pub fn config_digest(&self) -> String {
        airguard_obs::fnv1a_hex(self.identity().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_flow_has_no_interferers() {
        let t = ScenarioConfig::new(StandardScenario::ZeroFlow).build_topology();
        assert_eq!(t.node_count(), 9);
        assert!(t.flows.iter().all(|f| f.measured));
    }

    #[test]
    fn two_flow_has_interferers() {
        let t = ScenarioConfig::new(StandardScenario::TwoFlow).build_topology();
        assert_eq!(t.node_count(), 13);
        assert_eq!(t.flows.iter().filter(|f| !f.measured).count(), 2);
    }

    #[test]
    fn default_misbehaver_is_node_3() {
        let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow).misbehavior_percent(50.0);
        let t = cfg.build_topology();
        assert_eq!(cfg.misbehaving_set(&t), vec![NodeId::new(3)]);
    }

    #[test]
    fn pm_zero_means_no_misbehavers() {
        let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow).misbehavior_percent(0.0);
        let t = cfg.build_topology();
        assert!(cfg.misbehaving_set(&t).is_empty());
    }

    #[test]
    fn random_scenario_draws_five_senders() {
        let cfg = ScenarioConfig::new(StandardScenario::Random).misbehavior_percent(60.0);
        let t = cfg.build_topology();
        let m = cfg.misbehaving_set(&t);
        assert_eq!(m.len(), 5);
        let distinct: std::collections::HashSet<_> = m.iter().collect();
        assert_eq!(distinct.len(), 5, "misbehaving nodes are distinct");
        // Reproducible for the same seed.
        assert_eq!(m, cfg.misbehaving_set(&t));
    }

    #[test]
    fn config_digest_is_seed_independent_but_config_sensitive() {
        let base = ScenarioConfig::new(StandardScenario::ZeroFlow).misbehavior_percent(50.0);
        let d1 = base.clone().seed(1).config_digest();
        let d2 = base.clone().seed(2).config_digest();
        assert_eq!(d1, d2, "seed must not affect the identity digest");
        assert_eq!(d1.len(), 16);
        let other = base.clone().n_senders(4).config_digest();
        assert_ne!(d1, other, "config changes must change the digest");
        let other_pm = base.misbehavior_percent(60.0).config_digest();
        assert_ne!(d1, other_pm);
    }

    #[test]
    fn summary_digest_is_derived_from_the_scenario_identity() {
        // The runner's per-report digest and the scenario's cache
        // digest must come from the same field enumeration: the
        // scenario identity embeds the simulation identity verbatim,
        // and the summary digest IS the simulation-config digest.
        let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .n_senders(2)
            .sim_time_secs(1)
            .seed(7);
        assert!(
            cfg.identity().contains(&cfg.simulation_config().identity()),
            "scenario identity must embed the simulation identity"
        );
        let report = cfg.run();
        assert_eq!(
            report.summary.config_digest,
            cfg.simulation_config().config_digest(),
            "runner summary digest must delegate to SimulationConfig::config_digest"
        );
        // Both digest paths are seed-independent.
        assert_eq!(
            cfg.simulation_config().config_digest(),
            cfg.clone().seed(9).simulation_config().config_digest()
        );
        assert_eq!(cfg.config_digest(), cfg.clone().seed(9).config_digest());
    }

    #[test]
    fn zero_intensity_fault_plan_is_byte_identical_to_baseline() {
        let base = ScenarioConfig::new(StandardScenario::ZeroFlow).misbehavior_percent(50.0);
        let noop = FaultPlan {
            burst_loss: Some(crate::BurstLoss {
                p_enter: 0.0,
                p_exit: 0.4,
                loss_good: 0.0,
                loss_bad: 0.9,
            }),
            clock_drift: Some(crate::ClockDrift {
                per_mille: 0,
                nodes: vec![],
            }),
            ..FaultPlan::default()
        };
        let faulted = base.clone().fault(noop).expect("noop plan validates");
        assert_eq!(
            base.identity(),
            faulted.identity(),
            "zero-intensity plan must normalise away entirely"
        );
        assert_eq!(base.config_digest(), faulted.config_digest());
    }

    #[test]
    fn live_fault_plan_changes_the_identity() {
        let base = ScenarioConfig::new(StandardScenario::ZeroFlow);
        let faulted = base
            .clone()
            .fault(FaultPlan {
                burst_loss: Some(crate::BurstLoss {
                    p_enter: 0.01,
                    p_exit: 0.2,
                    loss_good: 0.0,
                    loss_bad: 0.8,
                }),
                ..FaultPlan::default()
            })
            .expect("live plan validates");
        assert_ne!(base.config_digest(), faulted.config_digest());
    }

    #[test]
    fn impossible_fault_plans_are_rejected_at_build_time() {
        let base = ScenarioConfig::new(StandardScenario::ZeroFlow);
        let err = base
            .clone()
            .fault(FaultPlan {
                burst_loss: Some(crate::BurstLoss {
                    p_enter: 1.5,
                    p_exit: 0.2,
                    loss_good: 0.0,
                    loss_bad: 0.8,
                }),
                ..FaultPlan::default()
            })
            .expect_err("probability above one must be rejected");
        assert!(err.contains("invalid fault plan"), "{err}");
        // The 9-node star has nodes 0..=8; crashing node 99 is impossible.
        let err = base
            .fault(FaultPlan {
                churn: vec![crate::CrashEvent {
                    node: 99,
                    at: SimDuration::from_secs(1),
                    down_for: SimDuration::from_secs(1),
                    preserve_monitor: true,
                }],
                ..FaultPlan::default()
            })
            .expect_err("crash of a non-topology node must be rejected");
        assert!(err.contains("99"), "{err}");
    }

    #[test]
    fn faulted_scenario_runs_deterministically() {
        let cfg = || {
            ScenarioConfig::new(StandardScenario::ZeroFlow)
                .n_senders(2)
                .sim_time_secs(2)
                .seed(5)
                .fault(FaultPlan {
                    burst_loss: Some(crate::BurstLoss {
                        p_enter: 0.05,
                        p_exit: 0.3,
                        loss_good: 0.0,
                        loss_bad: 0.9,
                    }),
                    corruption: Some(crate::Corruption {
                        backoff_prob: 0.05,
                        backoff_max_delta: 8,
                        attempt_prob: 0.05,
                        attempt_max_delta: 2,
                    }),
                    clock_drift: Some(crate::ClockDrift {
                        per_mille: 50,
                        nodes: vec![0],
                    }),
                    ..FaultPlan::default()
                })
                .expect("plan validates")
        };
        let a = cfg().run();
        let b = cfg().run();
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        assert!(a.throughput.total_bytes() > 0, "faulted run still delivers");
    }

    #[test]
    fn observed_runs_fold_detection_latency_histograms() {
        use airguard_obs::{DIAGNOSIS_LATENCY_HIST, PENALTY_LATENCY_HIST};
        let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .n_senders(4)
            .sim_time_secs(5)
            .misbehavior_percent(90.0)
            .seed(1);
        let (report, _sink) = cfg.run_observed();
        let hists = &report.summary.histograms;
        let penalties = hists
            .get(PENALTY_LATENCY_HIST)
            .expect("observed run records the penalty-latency histogram");
        assert!(
            penalties.total >= 1,
            "a 90% cheater must draw at least one penalty"
        );
        assert!(
            hists.contains_key(DIAGNOSIS_LATENCY_HIST),
            "diagnosis-latency histogram must be registered"
        );
        // A blind run of the same configuration has neither.
        let blind = cfg.run();
        assert!(!blind.summary.histograms.contains_key(PENALTY_LATENCY_HIST));
    }

    #[test]
    fn observe_mask_enters_the_identity_only_when_set() {
        use airguard_obs::{DETECTION_OBSERVE_MASK, PENALTY_LATENCY_HIST};
        let base = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .n_senders(2)
            .sim_time_secs(2)
            .misbehavior_percent(90.0);
        assert!(
            !base.identity().contains("observe_mask"),
            "zero mask must keep the pre-observation identity bytes"
        );
        let observed = base.clone().observe(DETECTION_OBSERVE_MASK);
        assert_ne!(
            base.config_digest(),
            observed.config_digest(),
            "an observed cell must never share a cache entry with a blind one"
        );
        // The engine path (plain `run`) picks the masked sink up from
        // the config itself and folds the latency histograms.
        let report = observed.run();
        assert!(report.summary.histograms.contains_key(PENALTY_LATENCY_HIST));
    }

    #[test]
    fn detector_enters_the_identity_only_when_not_the_default() {
        let base = ScenarioConfig::new(StandardScenario::ZeroFlow).sim_time_secs(2);
        assert!(
            !base.identity().contains("detector="),
            "the default window detector must keep the pre-trait identity bytes"
        );
        assert_eq!(base.detector_kind(), "window");
        let explicit_window = base.clone().detector(DetectorConfig::Window);
        assert_eq!(
            base.config_digest(),
            explicit_window.config_digest(),
            "explicitly selecting the default must not fork the cache"
        );
        let cusum = base
            .clone()
            .detector(DetectorConfig::from_kind("cusum").expect("known"));
        let cw = base
            .clone()
            .detector(DetectorConfig::from_kind("cw").expect("known"));
        assert!(cusum.identity().contains("|detector=cusum:"));
        assert!(cw.identity().contains("|detector=cw:"));
        assert_ne!(base.config_digest(), cusum.config_digest());
        assert_ne!(base.config_digest(), cw.config_digest());
        assert_ne!(cusum.config_digest(), cw.config_digest());
    }

    #[test]
    fn detector_choice_changes_the_run_not_just_the_digest() {
        // A PM=90 cheater is flagged by every detector, but the flag
        // *timing* differs, so the diagnosis tallies must diverge while
        // seeds and every other knob stay equal.
        let base = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Correct)
            .misbehavior_percent(90.0)
            .sim_time_secs(2)
            .seed(7);
        let window = base.clone().run();
        let cusum = base
            .clone()
            .detector(DetectorConfig::from_kind("cusum").expect("known"))
            .run();
        assert_ne!(
            window.tally, cusum.tally,
            "cusum must classify at least some packets differently"
        );
        // Both still catch the cheater.
        assert!(window.tally.correct_diagnosis_percent() > 0.0);
        assert!(cusum.tally.correct_diagnosis_percent() > 0.0);
    }

    #[test]
    fn profiled_runs_match_plain_runs_byte_for_byte() {
        use airguard_obs::{Phase, PhaseProfiler};
        let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .n_senders(2)
            .sim_time_secs(2)
            .seed(4);
        let plain = cfg.run();
        let profiler = PhaseProfiler::enabled();
        let profiled = cfg
            .run_budgeted_profiled(&RunBudget::unlimited(), profiler.clone())
            .expect("unlimited budget cannot trip");
        assert_eq!(
            plain.summary.to_json(),
            profiled.summary.to_json(),
            "profiling must never leak into the deterministic summary"
        );
        for phase in [
            Phase::SchedulerPop,
            Phase::MacStep,
            Phase::MediumPropagation,
        ] {
            assert!(
                profiler.totals(phase).1 > 0,
                "{} must have accumulated calls",
                phase.name()
            );
        }
    }

    #[test]
    fn short_zero_flow_run_delivers_traffic() {
        let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Dot11)
            .n_senders(2)
            .sim_time_secs(2)
            .seed(3)
            .run();
        assert!(report.throughput.total_bytes() > 0);
        assert_eq!(report.measured_senders.len(), 2);
    }
}
