//! Spatial sharding: intra-run parallelism over interference components.
//!
//! A spatial run's medium only couples nodes within the interference
//! cutoff ([`airguard_phy::interference_cutoff`], ≈ 1.1 km for the
//! paper's calibration), and the spatial medium keys every random draw
//! by the *global* (transmitter, receiver) pair — so two nodes that can
//! never sense each other can never perturb each other's outcomes. This
//! module exploits that: it partitions the topology into connected
//! components of the "within cutoff OR shares a flow" graph, simulates
//! each component as an independent sub-run (with global node/flow
//! identities preserved via [`ShardScope`], so every seed stream is the
//! one the monolithic run would draw), and merges the per-component
//! reports deterministically.
//!
//! Determinism contract:
//!
//! * The decomposition depends only on topology and config — never on
//!   the worker count — and components are ordered by their smallest
//!   member id, with members ascending inside each component.
//! * Workers claim components from a shared cursor, but results are
//!   written into per-component slots and merged in component order, so
//!   the merged report and record stream are **byte-identical at any
//!   worker count**.
//! * Per-node surfaces (throughput flows, delays, counters, monitors)
//!   partition across components; registry counters and histograms are
//!   order-insensitive sums. Merging therefore reproduces exactly what
//!   one monolithic spatial run over the full topology produces —
//!   except under `corruption` faults, whose single sequential stream
//!   cannot be split (worker-count identity still holds; only
//!   sharded-vs-monolithic equality is excluded).
//! * Records are merged by stable sort on virtual time, so events with
//!   equal timestamps stay in component order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use airguard_fault::FaultPlan;
use airguard_mac::dcf::MacCounters;
use airguard_metrics::{DelayAccount, DiagnosisTally, ThroughputAccount, TimeBinned};
use airguard_obs::{EventSink, Phase, PhaseProfiler, Record, RegistrySnapshot, RunSummary};
use airguard_phy::{interference_cutoff, TileIndex};
use airguard_sim::trace::Trace;
use airguard_sim::NodeId;

use crate::node_policy::NodePolicy;
use crate::runner::{RunBudget, RunReport, ShardScope, Simulation, SimulationConfig};
use crate::topology::Topology;

/// Union-find with the invariant that every set's root is its smallest
/// member (unions always attach the larger root under the smaller), so
/// component enumeration in node order is automatically ordered by
/// minimum member id.
struct DisjointSet {
    parent: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            // Path halving keeps the tree flat without recursion.
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Everything one worker needs to simulate a single component.
struct ComponentSpec {
    /// Global node ids, ascending; `members[local]` is local's identity.
    members: Vec<u32>,
    /// Global indices of this component's flows, in flow order.
    flow_ids: Vec<usize>,
    /// Local positions + flows (flow endpoints keep their global ids).
    topology: Topology,
    policies: Vec<NodePolicy>,
    misbehaving: Vec<NodeId>,
    /// The run config with the fault plan restricted to this component.
    cfg: SimulationConfig,
}

/// Restricts `plan` to one component, identified by its ascending
/// global member ids: churn events are kept for member nodes only and
/// renumbered to local indices (a member's local index is its rank in
/// `members`), drift target lists are translated the same way (a drift
/// that targeted only other components is dropped — an *empty* list
/// means "every node", so a filtered-to-empty list must not be kept).
/// Burst loss and corruption are component-global knobs and pass
/// through unchanged.
fn restrict_fault(plan: &FaultPlan, members: &[u32]) -> Option<FaultPlan> {
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members ascend");
    let local_of = |global: u32| members.binary_search(&global).ok();
    let churn = plan
        .churn
        .iter()
        .filter_map(|crash| {
            local_of(crash.node).map(|local| {
                let mut c = *crash;
                c.node = local as u32;
                c
            })
        })
        .collect();
    let clock_drift = plan.clock_drift.as_ref().and_then(|drift| {
        if drift.nodes.is_empty() {
            return Some(drift.clone());
        }
        let nodes: Vec<u32> = drift
            .nodes
            .iter()
            .filter_map(|&n| local_of(n))
            .map(|local| local as u32)
            .collect();
        if nodes.is_empty() {
            None
        } else {
            Some(airguard_fault::ClockDrift {
                per_mille: drift.per_mille,
                nodes,
            })
        }
    });
    let restricted = FaultPlan {
        burst_loss: plan.burst_loss,
        churn,
        corruption: plan.corruption,
        clock_drift,
    };
    if restricted.is_noop() {
        None
    } else {
        Some(restricted)
    }
}

/// Decomposes the run into independent component specs. Two nodes share
/// a component when they are within the interference cutoff of each
/// other (directly or transitively) or when a flow connects them; the
/// result depends only on topology and config.
fn build_plan(
    cfg: &SimulationConfig,
    topology: &Topology,
    policies: Vec<NodePolicy>,
    misbehaving: &[NodeId],
) -> Vec<ComponentSpec> {
    let n = topology.node_count();
    let cutoff = interference_cutoff(&cfg.phy);
    let tiles = TileIndex::build(&topology.positions, cutoff);
    let mut ds = DisjointSet::new(n);
    for i in 0..n {
        for &j in tiles.candidates(i) {
            ds.union(i, j as usize);
        }
    }
    for flow in &topology.flows {
        ds.union(flow.src.index(), flow.dst.index());
    }
    // Roots are minimum members, so assigning component indices on the
    // first encounter while scanning ids ascending orders components by
    // their smallest member.
    let mut comp_index: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();
    let mut comp_of = vec![0usize; n];
    for (i, slot) in comp_of.iter_mut().enumerate() {
        let root = ds.find(i);
        let next = comp_index.len();
        *slot = *comp_index.entry(root).or_insert(next);
    }
    let n_comp = comp_index.len();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_comp];
    let mut positions: Vec<Vec<airguard_phy::Position>> = vec![Vec::new(); n_comp];
    for (i, &c) in comp_of.iter().enumerate() {
        members[c].push(i as u32);
        positions[c].push(topology.positions[i]);
    }
    let mut flows: Vec<Vec<crate::topology::Flow>> = vec![Vec::new(); n_comp];
    let mut flow_ids: Vec<Vec<usize>> = vec![Vec::new(); n_comp];
    for (fid, flow) in topology.flows.iter().enumerate() {
        let c = comp_of[flow.src.index()];
        debug_assert_eq!(c, comp_of[flow.dst.index()], "flow endpoints were unioned");
        flows[c].push(*flow);
        flow_ids[c].push(fid);
    }
    // One ascending pass distributes policies in the same order members
    // were pushed, so `policies[local]` matches `members[local]`.
    let mut comp_policies: Vec<Vec<NodePolicy>> = (0..n_comp).map(|_| Vec::new()).collect();
    for (i, policy) in policies.into_iter().enumerate() {
        comp_policies[comp_of[i]].push(policy);
    }
    let mut comp_misbehaving: Vec<Vec<NodeId>> = vec![Vec::new(); n_comp];
    for &m in misbehaving {
        if let Some(&c) = comp_of.get(m.index()) {
            comp_misbehaving[c].push(m);
        }
    }
    let mut specs = Vec::with_capacity(n_comp);
    let mut policy_parts = comp_policies.into_iter();
    for c in 0..n_comp {
        // The member list must be this component's — the restriction
        // renumbers global fault targets to *this* component's local
        // indices and drops the rest.
        let fault = cfg
            .fault
            .as_ref()
            .and_then(|plan| restrict_fault(plan, &members[c]));
        let sub_cfg = SimulationConfig {
            fault,
            ..cfg.clone()
        };
        specs.push(ComponentSpec {
            members: std::mem::take(&mut members[c]),
            flow_ids: std::mem::take(&mut flow_ids[c]),
            topology: Topology {
                positions: std::mem::take(&mut positions[c]),
                flows: std::mem::take(&mut flows[c]),
            },
            policies: policy_parts.next().unwrap_or_default(),
            misbehaving: std::mem::take(&mut comp_misbehaving[c]),
            cfg: sub_cfg,
        });
    }
    specs
}

/// Simulates one component and returns its report plus the records its
/// sink captured (empty when `sink_mask` is zero).
fn run_component(
    spec: ComponentSpec,
    sink_mask: u32,
    profiler: &PhaseProfiler,
    budget: &RunBudget,
) -> Result<(Vec<u32>, RunReport, Vec<Record>), String> {
    let members = spec.members.clone();
    let scope = ShardScope {
        node_ids: spec.members,
        flow_ids: spec.flow_ids,
    };
    let mut sim = Simulation::new_scoped(
        spec.cfg,
        spec.topology,
        spec.policies,
        spec.misbehaving,
        Some(scope),
    );
    sim.set_profiler(profiler.clone());
    let sink = (sink_mask != 0).then(|| {
        let sink = EventSink::with_mask(sink_mask);
        sim.set_trace(Trace::from_sink(sink.clone()));
        sink
    });
    let report = sim.run_budgeted(budget)?;
    let records = sink.map_or_else(Vec::new, |s| s.records());
    Ok((members, report, records))
}

/// How a sharded run executes — none of these can change a result
/// byte, which is why they travel apart from the simulation config.
#[derive(Debug, Clone)]
pub(crate) struct ShardOptions {
    /// Worker-thread cap (clamped to the component count, min 1).
    pub(crate) workers: usize,
    /// Telemetry category mask each component's sink records under
    /// (zero records nothing).
    pub(crate) sink_mask: u32,
    /// Shared phase profiler (clones share accumulators).
    pub(crate) profiler: PhaseProfiler,
}

/// Runs `cfg` over `topology` as independent interference components on
/// up to `opts.workers` threads, merging the per-component reports into
/// the report (and record stream) of the whole run.
///
/// The returned records are the merged stream, stably ordered by
/// virtual time. `budget` applies per component: `max_events` caps each
/// component's scheduler, and the shared deadline probe trips every
/// component at once.
///
/// # Errors
///
/// Returns the first tripped component's watchdog error, in component
/// order (deterministic regardless of which worker tripped first).
pub(crate) fn run_sharded(
    cfg: SimulationConfig,
    topology: Topology,
    policies: Vec<NodePolicy>,
    misbehaving: Vec<NodeId>,
    opts: &ShardOptions,
    budget: &RunBudget,
) -> Result<(RunReport, Vec<Record>), String> {
    let (workers, sink_mask, profiler) = (opts.workers, opts.sink_mask, &opts.profiler);
    let node_count = topology.node_count();
    let measured_senders = topology.measured_senders();
    let measured_flows = topology.measured_flow_pairs();
    let specs = {
        let _build = profiler.scope(Phase::ShardBuild);
        build_plan(&cfg, &topology, policies, &misbehaving)
    };
    let n_comp = specs.len();
    let workers = workers.max(1).min(n_comp.max(1));
    type SubResult = Result<(Vec<u32>, RunReport, Vec<Record>), String>;
    let slots: Vec<Mutex<Option<ComponentSpec>>> =
        specs.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let results: Vec<Mutex<Option<SubResult>>> = (0..n_comp).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_comp {
                    break;
                }
                let spec = slots[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take();
                let Some(spec) = spec else { continue };
                let outcome = run_component(spec, sink_mask, profiler, budget);
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
            });
        }
    });
    let _merge = profiler.scope(Phase::ShardMerge);
    let mut subs = Vec::with_capacity(n_comp);
    for slot in results {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(Ok(sub)) => subs.push(sub),
            Some(Err(e)) => return Err(e),
            None => return Err("shard worker exited without recording a result".to_owned()),
        }
    }
    let mut throughput = ThroughputAccount::new();
    let mut tally = DiagnosisTally::new(misbehaving.iter().copied());
    let mut series = TimeBinned::new(cfg.diag_bin.min(cfg.horizon), cfg.horizon);
    let mut delays = DelayAccount::new();
    let mut counters = vec![MacCounters::default(); node_count];
    let mut monitors = Vec::new();
    let mut receiver_violations = Vec::new();
    let mut observers = Vec::new();
    let mut events = 0u64;
    let mut snapshot = RegistrySnapshot::default();
    let mut records: Vec<Record> = Vec::new();
    for (members, report, recs) in subs {
        throughput.merge(&report.throughput);
        tally.merge(&report.tally);
        series.merge(&report.series);
        delays.merge(&report.delays);
        for (local, &gid) in members.iter().enumerate() {
            counters[gid as usize] = report.counters[local];
        }
        monitors.extend(report.monitors);
        receiver_violations.extend(report.receiver_violations);
        observers.extend(report.observers);
        events += report.events;
        snapshot.merge(&RegistrySnapshot {
            counters: report.summary.counters,
            histograms: report.summary.histograms,
        });
        records.extend(recs);
    }
    monitors.sort_by_key(|entry| entry.0);
    receiver_violations.sort_by_key(|entry| entry.0);
    observers.sort_by_key(|entry| entry.0);
    // Stable: components were appended in order, so equal timestamps
    // keep component order — the same bytes at any worker count.
    records.sort_by_key(|r| r.time_us);
    let summary = RunSummary::new(
        "sim",
        cfg.seed.value(),
        cfg.config_digest(),
        cfg.horizon.as_micros(),
    )
    .with_metrics(snapshot);
    Ok((
        RunReport {
            elapsed: cfg.horizon,
            throughput,
            tally,
            series,
            delays,
            measured_senders,
            measured_flows,
            misbehaving,
            counters,
            monitors,
            receiver_violations,
            observers,
            events,
            summary,
        },
        records,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_sim::MasterSeed;

    fn campus_topology(clusters: usize) -> Topology {
        // 3 km cluster spacing is far beyond the ~1.1 km interference
        // cutoff, so each cluster is its own component.
        Topology::campus(clusters, 6, 3_000.0, 2_000_000, 512, MasterSeed::new(7))
    }

    #[test]
    fn campus_clusters_decompose_into_one_component_each() {
        let topo = campus_topology(4);
        let cfg = SimulationConfig {
            spatial: true,
            ..SimulationConfig::default()
        };
        let n = topo.node_count();
        let policies = (0..n)
            .map(|_| NodePolicy::dot11(airguard_mac::Selfish::None))
            .collect();
        let plan = build_plan(&cfg, &topo, policies, &[]);
        assert_eq!(plan.len(), 4);
        let mut seen = Vec::new();
        for spec in &plan {
            assert!(
                spec.members.windows(2).all(|w| w[0] < w[1]),
                "members must ascend"
            );
            assert_eq!(spec.members.len(), 6);
            assert_eq!(spec.topology.node_count(), 6);
            assert_eq!(spec.policies.len(), 6);
            assert_eq!(spec.topology.flows.len(), spec.flow_ids.len());
            seen.extend_from_slice(&spec.members);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..n as u32).collect::<Vec<_>>());
        // Components ordered by smallest member.
        let mins: Vec<u32> = plan.iter().map(|s| s.members[0]).collect();
        assert!(mins.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn flows_keep_endpoints_in_one_component() {
        let topo = campus_topology(3);
        let cfg = SimulationConfig {
            spatial: true,
            ..SimulationConfig::default()
        };
        let n = topo.node_count();
        let policies = (0..n)
            .map(|_| NodePolicy::dot11(airguard_mac::Selfish::None))
            .collect();
        let plan = build_plan(&cfg, &topo, policies, &[]);
        for spec in &plan {
            for flow in &spec.topology.flows {
                assert!(spec.members.contains(&flow.src.value()));
                assert!(spec.members.contains(&flow.dst.value()));
            }
        }
    }

    #[test]
    fn drift_filtered_to_empty_is_dropped_not_globalised() {
        // A drift that targets only nodes outside the component must
        // vanish: keeping an emptied list would re-read as "all nodes".
        let plan = FaultPlan {
            clock_drift: Some(airguard_fault::ClockDrift {
                per_mille: 50,
                nodes: vec![9],
            }),
            ..FaultPlan::default()
        };
        let members = [0u32, 1];
        let restricted = restrict_fault(&plan, &members);
        assert!(restricted.is_none(), "emptied drift must drop the plan");
        // A drift that names a member is translated to local indices.
        let plan = FaultPlan {
            clock_drift: Some(airguard_fault::ClockDrift {
                per_mille: 50,
                nodes: vec![1, 9],
            }),
            ..FaultPlan::default()
        };
        let restricted =
            restrict_fault(&plan, &members).expect("drift names a member, plan survives");
        assert_eq!(
            restricted.clock_drift.expect("drift kept").nodes,
            vec![1],
            "global id 1 is local index 1 here"
        );
    }

    #[test]
    fn restriction_uses_each_components_own_member_list() {
        // Regression: build_plan once passed one global local-index map
        // to every component, so a churn event for global node g leaked
        // into *every* component at whatever node held g's local rank
        // (or panicked out of bounds). Restricting against disjoint
        // member lists must keep each event in exactly one component.
        let plan = FaultPlan {
            churn: vec![
                airguard_fault::CrashEvent {
                    node: 7,
                    at: airguard_sim::SimDuration::from_millis(5),
                    down_for: airguard_sim::SimDuration::from_millis(5),
                    preserve_monitor: false,
                },
                airguard_fault::CrashEvent {
                    node: 2,
                    at: airguard_sim::SimDuration::from_millis(9),
                    down_for: airguard_sim::SimDuration::from_millis(3),
                    preserve_monitor: true,
                },
            ],
            ..FaultPlan::default()
        };
        // Component A holds globals {0, 2, 4}; component B holds
        // {5, 7, 9}. Node 7 has local rank 1 in B and must not surface
        // in A even though A also has a node of rank 1.
        let a = restrict_fault(&plan, &[0, 2, 4]).expect("A keeps node 2's crash");
        assert_eq!(a.churn.len(), 1);
        assert_eq!(a.churn[0].node, 1, "global 2 is rank 1 of {{0, 2, 4}}");
        assert!(a.churn[0].preserve_monitor);
        let b = restrict_fault(&plan, &[5, 7, 9]).expect("B keeps node 7's crash");
        assert_eq!(b.churn.len(), 1);
        assert_eq!(b.churn[0].node, 1, "global 7 is rank 1 of {{5, 7, 9}}");
        assert!(!b.churn[0].preserve_monitor);
        assert!(
            restrict_fault(&plan, &[10, 11]).is_none(),
            "a component with no fault targets gets no plan at all"
        );
    }
}
