//! Topology builders: the paper's three evaluation settings plus the
//! scalable deterministic generators (grid, campus, stadium) used by
//! the 10k+-node scaling scenarios.

use airguard_phy::{Meters, Position, TileIndex};
use airguard_sim::{MasterSeed, NodeId};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// One CBR flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Traffic source.
    pub src: NodeId,
    /// Traffic sink.
    pub dst: NodeId,
    /// Offered rate in bits per second.
    pub rate_bps: u64,
    /// Payload bytes per packet.
    pub payload: u32,
    /// Whether this flow's senders are part of the measured population
    /// (interferer flows are not).
    pub measured: bool,
}

/// A fully specified node placement plus traffic matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Node positions; node id = index.
    pub positions: Vec<Position>,
    /// All flows (measured and interferer).
    pub flows: Vec<Flow>,
}

impl Topology {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Sources of measured flows, in id order.
    #[must_use]
    pub fn measured_senders(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .flows
            .iter()
            .filter(|f| f.measured)
            .map(|f| f.src)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The (src, dst) pairs of measured flows, for fairness computations.
    #[must_use]
    pub fn measured_flow_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.flows
            .iter()
            .filter(|f| f.measured)
            .map(|f| (f.src, f.dst))
            .collect()
    }

    /// The paper's Fig. 3 star: receiver R (node 0) at the origin,
    /// `n_senders` senders on a 150 m circle, each with a backlogged
    /// CBR flow of `rate_bps` to R. With `with_interferers`, the flows
    /// A→B and C→D (500 Kb/s) are placed 500 m on either side of R
    /// (nodes `n+1..n+4`), giving the TWO-FLOW scenario.
    ///
    /// # Panics
    ///
    /// Panics if `n_senders` is zero.
    #[must_use]
    pub fn star(n_senders: usize, rate_bps: u64, payload: u32, with_interferers: bool) -> Self {
        assert!(n_senders > 0, "a star needs at least one sender");
        let mut positions = vec![Position::new(0.0, 0.0)];
        let mut flows = Vec::new();
        for k in 0..n_senders {
            let angle = std::f64::consts::TAU * k as f64 / n_senders as f64;
            positions.push(Position::new(0.0, 0.0).offset_polar(150.0, angle));
            flows.push(Flow {
                src: NodeId::new((k + 1) as u32),
                dst: NodeId::new(0),
                rate_bps,
                payload,
                measured: true,
            });
        }
        if with_interferers {
            let base = (n_senders + 1) as u32;
            // A and B sit 500 m west of R; C and D 500 m east. Each pair is
            // 100 m apart (reliable in-pair delivery), both ≈ 502 m from R:
            // R senses their transmissions with high probability while the
            // far-side senders mostly do not — the §5 carrier-sense
            // asymmetry.
            let quad = [
                Position::new(-500.0, -50.0), // A
                Position::new(-500.0, 50.0),  // B
                Position::new(500.0, -50.0),  // C
                Position::new(500.0, 50.0),   // D
            ];
            positions.extend_from_slice(&quad);
            for (s, d) in [(0u32, 1u32), (2, 3)] {
                flows.push(Flow {
                    src: NodeId::new(base + s),
                    dst: NodeId::new(base + d),
                    rate_bps: 500_000,
                    payload,
                    measured: false,
                });
            }
        }
        Topology { positions, flows }
    }

    /// The Fig. 9 random setting: `n` nodes placed uniformly in a
    /// `width × height` m² area, each setting up a backlogged CBR flow to
    /// its nearest neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn random(
        n: usize,
        width: f64,
        height: f64,
        rate_bps: u64,
        payload: u32,
        seed: MasterSeed,
    ) -> Self {
        assert!(n >= 2, "a random topology needs at least two nodes");
        let mut rng = seed.stream("topology", 0);
        let positions: Vec<Position> = (0..n)
            .map(|_| Position::new(rng.random_range(0.0..width), rng.random_range(0.0..height)))
            .collect();
        // "Each node sets up a CBR connection with one of its neighbors":
        // prefer a random node within plausible delivery range (200 m);
        // fall back to the nearest node when isolated. The neighbor
        // search runs on a 200 m tile grid instead of the old all-pairs
        // scan (which degraded quadratically at high density); the grid
        // returns the identical ascending-id candidate list, so the
        // subsequent range draw — and therefore the whole topology — is
        // byte-identical to the scan it replaces.
        let index = TileIndex::build(&positions, Meters::new(200.0));
        let mut flows = Vec::new();
        for (i, &pos) in positions.iter().enumerate() {
            let neighbors = index.candidates(i);
            let dst = if neighbors.is_empty() {
                positions
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .min_by(|a, b| {
                        pos.distance_to(*a.1)
                            .partial_cmp(&pos.distance_to(*b.1))
                            .expect("distances are not NaN") // lint:allow(panic-expect) — positions are finite by construction, so pairwise distances are never NaN
                    })
                    .map(|(j, _)| j)
                    .expect("n >= 2 guarantees another node") // lint:allow(panic-expect) — scenario validation rejects single-node topologies before flows are built
            } else {
                neighbors[rng.random_range(0..neighbors.len())] as usize
            };
            flows.push(Flow {
                src: NodeId::new(i as u32),
                dst: NodeId::new(dst as u32),
                rate_bps,
                payload,
                measured: true,
            });
        }
        Topology { positions, flows }
    }

    /// A deterministic square lattice of `n` nodes with `spacing`
    /// meters between neighbors; each node runs a backlogged CBR flow
    /// to a lattice neighbor one `spacing` away — its right row
    /// neighbor when one exists, else left, and when a partial last row
    /// holds a single node (no row neighbor at all) the node directly
    /// above. Placement is RNG-free and O(n), usable up to 100k nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `spacing` is not positive.
    #[must_use]
    pub fn grid(n: usize, spacing: f64, rate_bps: u64, payload: u32) -> Self {
        assert!(n >= 2, "a grid topology needs at least two nodes");
        assert!(spacing > 0.0, "grid spacing must be positive");
        let side = (n as f64).sqrt().ceil() as usize;
        let mut positions = Vec::with_capacity(n);
        let mut flows = Vec::with_capacity(n);
        for i in 0..n {
            let (row, col) = (i / side, i % side);
            positions.push(Position::new(col as f64 * spacing, row as f64 * spacing));
        }
        for i in 0..n {
            let col = i % side;
            // Right neighbor when it exists (same row, in range of the
            // lattice); otherwise left. A single-node last row has no
            // row neighbor either way — `i - 1` would be the previous
            // row's far-right node, `spacing * hypot(side - 1, 1)`
            // meters away — so it sends to the node directly above.
            let dst = if col + 1 < side && i + 1 < n {
                i + 1
            } else if col > 0 {
                i - 1
            } else {
                i - side
            };
            flows.push(Flow {
                src: NodeId::new(i as u32),
                dst: NodeId::new(dst as u32),
                rate_bps,
                payload,
                measured: true,
            });
        }
        Topology { positions, flows }
    }

    /// A campus: `clusters` buildings on a square lattice spaced
    /// `cluster_spacing` meters apart, each holding `per_cluster` nodes
    /// stratified over a 300 × 300 m court (jittered sub-grid — every
    /// node gets its own cell, so density never stalls placement the
    /// way rejection sampling would). Flows stay within a cluster
    /// (node k → k+1 cyclically), so when `cluster_spacing` exceeds the
    /// interference cutoff the clusters are causally independent — the
    /// shape intra-run sharding exploits.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero, `per_cluster < 2`, or
    /// `cluster_spacing` is not positive.
    #[must_use]
    pub fn campus(
        clusters: usize,
        per_cluster: usize,
        cluster_spacing: f64,
        rate_bps: u64,
        payload: u32,
        seed: MasterSeed,
    ) -> Self {
        assert!(clusters > 0, "a campus needs at least one cluster");
        assert!(per_cluster >= 2, "a cluster needs at least two nodes");
        assert!(cluster_spacing > 0.0, "cluster spacing must be positive");
        const COURT: f64 = 300.0;
        let campus_side = (clusters as f64).sqrt().ceil() as usize;
        let cells = (per_cluster as f64).sqrt().ceil() as usize;
        let cell = COURT / cells as f64;
        let mut rng = seed.stream("topology.campus", 0);
        let mut positions = Vec::with_capacity(clusters * per_cluster);
        let mut flows = Vec::with_capacity(clusters * per_cluster);
        for c in 0..clusters {
            let origin = Position::new(
                (c % campus_side) as f64 * cluster_spacing,
                (c / campus_side) as f64 * cluster_spacing,
            );
            let base = c * per_cluster;
            for k in 0..per_cluster {
                let (row, col) = (k / cells, k % cells);
                positions.push(Position::new(
                    origin.x + col as f64 * cell + rng.random_range(0.0..cell),
                    origin.y + row as f64 * cell + rng.random_range(0.0..cell),
                ));
                flows.push(Flow {
                    src: NodeId::new((base + k) as u32),
                    dst: NodeId::new((base + (k + 1) % per_cluster) as u32),
                    rate_bps,
                    payload,
                    measured: true,
                });
            }
        }
        Topology { positions, flows }
    }

    /// A stadium bowl: `n` nodes on concentric rings around the origin,
    /// starting at `inner_radius` with 4 m between rings and roughly
    /// 2 m of arc per seat. Everyone is within a few hundred meters of
    /// everyone else — the maximum-contention single-cell shape. Flows
    /// pair adjacent seats on the same ring. RNG-free and O(n).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `inner_radius` is not positive.
    #[must_use]
    pub fn stadium(n: usize, inner_radius: f64, rate_bps: u64, payload: u32) -> Self {
        assert!(n >= 2, "a stadium needs at least two nodes");
        assert!(inner_radius > 0.0, "inner radius must be positive");
        const RING_STEP: f64 = 4.0;
        const SEAT_ARC: f64 = 2.0;
        let mut positions = Vec::with_capacity(n);
        let mut flows = Vec::with_capacity(n);
        let mut ring_starts = Vec::new();
        let mut radius = inner_radius;
        while positions.len() < n {
            let seats = ((std::f64::consts::TAU * radius / SEAT_ARC).floor() as usize)
                .max(1)
                .min(n - positions.len());
            ring_starts.push((positions.len(), seats));
            for s in 0..seats {
                let angle = std::f64::consts::TAU * s as f64 / seats as f64;
                positions.push(Position::new(0.0, 0.0).offset_polar(radius, angle));
            }
            radius += RING_STEP;
        }
        for &(start, seats) in &ring_starts {
            for s in 0..seats {
                let src = start + s;
                // A one-seat ring pairs with the previous node, or the
                // next one when it is the innermost (n ≥ 2 guarantees a
                // neighbor exists).
                let dst = if seats > 1 {
                    start + (s + 1) % seats
                } else if src > 0 {
                    src - 1
                } else {
                    src + 1
                };
                flows.push(Flow {
                    src: NodeId::new(src as u32),
                    dst: NodeId::new(dst as u32),
                    rate_bps,
                    payload,
                    measured: true,
                });
            }
        }
        Topology { positions, flows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_geometry_matches_the_paper() {
        let t = Topology::star(8, 2_000_000, 512, false);
        assert_eq!(t.node_count(), 9);
        let r = t.positions[0];
        for k in 1..=8 {
            let d = r.distance_to(t.positions[k]).value();
            assert!((d - 150.0).abs() < 1e-9, "sender {k} at {d} m");
        }
        assert_eq!(t.measured_senders().len(), 8);
        assert!(t.flows.iter().all(|f| f.dst == NodeId::new(0)));
    }

    #[test]
    fn interferers_sit_500m_out() {
        let t = Topology::star(8, 2_000_000, 512, true);
        assert_eq!(t.node_count(), 13);
        let r = t.positions[0];
        for k in 9..13 {
            let d = r.distance_to(t.positions[k]).value();
            assert!((d - 502.5).abs() < 1.0, "interferer {k} at {d} m");
        }
        // A-B pair distance is 100 m.
        assert!((t.positions[9].distance_to(t.positions[10]).value() - 100.0).abs() < 1e-9);
        // Interferer flows are unmeasured and slower.
        let unmeasured: Vec<&Flow> = t.flows.iter().filter(|f| !f.measured).collect();
        assert_eq!(unmeasured.len(), 2);
        assert!(unmeasured.iter().all(|f| f.rate_bps == 500_000));
    }

    #[test]
    fn senders_are_equidistant_neighbors() {
        let t = Topology::star(8, 2_000_000, 512, false);
        // Adjacent senders on the circle: 2·150·sin(π/8) ≈ 114.8 m.
        let d = t.positions[1].distance_to(t.positions[2]).value();
        assert!((d - 114.8).abs() < 0.5, "adjacent distance {d}");
    }

    #[test]
    fn random_topology_is_reproducible_and_in_bounds() {
        let a = Topology::random(40, 1500.0, 700.0, 2_000_000, 512, MasterSeed::new(5));
        let b = Topology::random(40, 1500.0, 700.0, 2_000_000, 512, MasterSeed::new(5));
        assert_eq!(a, b, "same seed, same topology");
        let c = Topology::random(40, 1500.0, 700.0, 2_000_000, 512, MasterSeed::new(6));
        assert_ne!(a, c, "different seed, different topology");
        for p in &a.positions {
            assert!((0.0..=1500.0).contains(&p.x));
            assert!((0.0..=700.0).contains(&p.y));
        }
        assert_eq!(a.flows.len(), 40, "every node originates a flow");
        for f in &a.flows {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn random_flows_prefer_close_neighbors() {
        let t = Topology::random(40, 1500.0, 700.0, 2_000_000, 512, MasterSeed::new(7));
        let close = t
            .flows
            .iter()
            .filter(|f| {
                t.positions[f.src.index()]
                    .distance_to(t.positions[f.dst.index()])
                    .value()
                    <= 200.0
            })
            .count();
        assert!(
            close * 10 >= t.flows.len() * 7,
            "most flows should be within delivery range, got {close}/40"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn empty_star_rejected() {
        let _ = Topology::star(0, 1, 512, false);
    }

    #[test]
    fn random_neighbor_grid_matches_the_all_pairs_scan() {
        // The tile-accelerated neighbor search must reproduce the old
        // O(n²) scan exactly: same candidate lists, same draws, same
        // topology bytes. This is the scan it replaced, kept here as
        // the specification.
        for seed in [5, 6, 7, 101] {
            let t = Topology::random(40, 1500.0, 700.0, 2_000_000, 512, MasterSeed::new(seed));
            let mut rng = MasterSeed::new(seed).stream("topology", 0);
            let positions: Vec<Position> = (0..40)
                .map(|_| Position::new(rng.random_range(0.0..1500.0), rng.random_range(0.0..700.0)))
                .collect();
            assert_eq!(t.positions, positions, "placement unchanged");
            for (i, &pos) in positions.iter().enumerate() {
                let neighbors: Vec<usize> = positions
                    .iter()
                    .enumerate()
                    .filter(|&(j, &p)| j != i && pos.distance_to(p).value() <= 200.0)
                    .map(|(j, _)| j)
                    .collect();
                let expect = if neighbors.is_empty() {
                    positions
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .min_by(|a, b| {
                            pos.distance_to(*a.1)
                                .partial_cmp(&pos.distance_to(*b.1))
                                .expect("finite")
                        })
                        .map(|(j, _)| j)
                        .expect("n >= 2")
                } else {
                    neighbors[rng.random_range(0..neighbors.len())]
                };
                assert_eq!(t.flows[i].dst, NodeId::new(expect as u32), "node {i}");
            }
        }
    }

    #[test]
    fn grid_is_deterministic_and_flows_stay_adjacent() {
        // 10_000 is a perfect square; 13 leaves a last row holding a
        // single node (side 4, node 12 alone on row 3), which must flow
        // to the node directly above it — not to the previous row's
        // far-right node a diagonal away.
        for n in [10_000, 13] {
            let t = Topology::grid(n, 50.0, 2_000_000, 512);
            assert_eq!(t.node_count(), n);
            assert_eq!(t, Topology::grid(n, 50.0, 2_000_000, 512));
            for f in &t.flows {
                assert_ne!(f.src, f.dst);
                let d = t.positions[f.src.index()]
                    .distance_to(t.positions[f.dst.index()])
                    .value();
                assert!((d - 50.0).abs() < 1e-9, "flow spans {d} m in n={n}");
            }
        }
        let t = Topology::grid(13, 50.0, 2_000_000, 512);
        assert_eq!(t.flows[12].dst.index(), 8, "lone last-row node sends up");
    }

    #[test]
    fn campus_clusters_are_separated_and_self_contained() {
        let t = Topology::campus(16, 40, 3_000.0, 2_000_000, 512, MasterSeed::new(9));
        assert_eq!(t.node_count(), 640);
        assert_eq!(
            t,
            Topology::campus(16, 40, 3_000.0, 2_000_000, 512, MasterSeed::new(9)),
            "same seed, same campus"
        );
        for f in &t.flows {
            assert_ne!(f.src, f.dst);
            assert_eq!(
                f.src.index() / 40,
                f.dst.index() / 40,
                "flows never cross clusters"
            );
        }
        // Nodes of different clusters are far beyond the ~1.1 km
        // paper-default interference cutoff.
        let inter = t.positions[0].distance_to(t.positions[40]).value();
        assert!(inter > 2_000.0, "clusters only {inter} m apart");
        // Within a cluster everything fits in the 300 m court.
        for k in 1..40 {
            let d = t.positions[0].distance_to(t.positions[k]).value();
            assert!(d < 300.0 * std::f64::consts::SQRT_2 + 1.0, "in-court {d}");
        }
    }

    #[test]
    fn stadium_rings_grow_outward() {
        let t = Topology::stadium(5_000, 30.0, 2_000_000, 512);
        assert_eq!(t.node_count(), 5_000);
        assert_eq!(t, Topology::stadium(5_000, 30.0, 2_000_000, 512));
        let center = Position::new(0.0, 0.0);
        let mut max_r = 0.0f64;
        for p in &t.positions {
            let r = center.distance_to(*p).value();
            assert!(r >= 30.0 - 1e-9);
            max_r = max_r.max(r);
        }
        assert!(max_r < 500.0, "stadium should stay compact, radius {max_r}");
        for f in &t.flows {
            assert_ne!(f.src, f.dst);
        }
    }
}
