//! Topology builders for the paper's three evaluation settings.

use airguard_phy::Position;
use airguard_sim::{MasterSeed, NodeId};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// One CBR flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Traffic source.
    pub src: NodeId,
    /// Traffic sink.
    pub dst: NodeId,
    /// Offered rate in bits per second.
    pub rate_bps: u64,
    /// Payload bytes per packet.
    pub payload: u32,
    /// Whether this flow's senders are part of the measured population
    /// (interferer flows are not).
    pub measured: bool,
}

/// A fully specified node placement plus traffic matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Node positions; node id = index.
    pub positions: Vec<Position>,
    /// All flows (measured and interferer).
    pub flows: Vec<Flow>,
}

impl Topology {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Sources of measured flows, in id order.
    #[must_use]
    pub fn measured_senders(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .flows
            .iter()
            .filter(|f| f.measured)
            .map(|f| f.src)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The (src, dst) pairs of measured flows, for fairness computations.
    #[must_use]
    pub fn measured_flow_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.flows
            .iter()
            .filter(|f| f.measured)
            .map(|f| (f.src, f.dst))
            .collect()
    }

    /// The paper's Fig. 3 star: receiver R (node 0) at the origin,
    /// `n_senders` senders on a 150 m circle, each with a backlogged
    /// CBR flow of `rate_bps` to R. With `with_interferers`, the flows
    /// A→B and C→D (500 Kb/s) are placed 500 m on either side of R
    /// (nodes `n+1..n+4`), giving the TWO-FLOW scenario.
    ///
    /// # Panics
    ///
    /// Panics if `n_senders` is zero.
    #[must_use]
    pub fn star(n_senders: usize, rate_bps: u64, payload: u32, with_interferers: bool) -> Self {
        assert!(n_senders > 0, "a star needs at least one sender");
        let mut positions = vec![Position::new(0.0, 0.0)];
        let mut flows = Vec::new();
        for k in 0..n_senders {
            let angle = std::f64::consts::TAU * k as f64 / n_senders as f64;
            positions.push(Position::new(0.0, 0.0).offset_polar(150.0, angle));
            flows.push(Flow {
                src: NodeId::new((k + 1) as u32),
                dst: NodeId::new(0),
                rate_bps,
                payload,
                measured: true,
            });
        }
        if with_interferers {
            let base = (n_senders + 1) as u32;
            // A and B sit 500 m west of R; C and D 500 m east. Each pair is
            // 100 m apart (reliable in-pair delivery), both ≈ 502 m from R:
            // R senses their transmissions with high probability while the
            // far-side senders mostly do not — the §5 carrier-sense
            // asymmetry.
            let quad = [
                Position::new(-500.0, -50.0), // A
                Position::new(-500.0, 50.0),  // B
                Position::new(500.0, -50.0),  // C
                Position::new(500.0, 50.0),   // D
            ];
            positions.extend_from_slice(&quad);
            for (s, d) in [(0u32, 1u32), (2, 3)] {
                flows.push(Flow {
                    src: NodeId::new(base + s),
                    dst: NodeId::new(base + d),
                    rate_bps: 500_000,
                    payload,
                    measured: false,
                });
            }
        }
        Topology { positions, flows }
    }

    /// The Fig. 9 random setting: `n` nodes placed uniformly in a
    /// `width × height` m² area, each setting up a backlogged CBR flow to
    /// its nearest neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn random(
        n: usize,
        width: f64,
        height: f64,
        rate_bps: u64,
        payload: u32,
        seed: MasterSeed,
    ) -> Self {
        assert!(n >= 2, "a random topology needs at least two nodes");
        let mut rng = seed.stream("topology", 0);
        let positions: Vec<Position> = (0..n)
            .map(|_| Position::new(rng.random_range(0.0..width), rng.random_range(0.0..height)))
            .collect();
        // "Each node sets up a CBR connection with one of its neighbors":
        // prefer a random node within plausible delivery range (200 m);
        // fall back to the nearest node when isolated.
        let mut flows = Vec::new();
        for (i, &pos) in positions.iter().enumerate() {
            let neighbors: Vec<usize> = positions
                .iter()
                .enumerate()
                .filter(|&(j, &p)| j != i && pos.distance_to(p).value() <= 200.0)
                .map(|(j, _)| j)
                .collect();
            let dst = if neighbors.is_empty() {
                positions
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .min_by(|a, b| {
                        pos.distance_to(*a.1)
                            .partial_cmp(&pos.distance_to(*b.1))
                            .expect("distances are not NaN") // lint:allow(panic-expect) — positions are finite by construction, so pairwise distances are never NaN
                    })
                    .map(|(j, _)| j)
                    .expect("n >= 2 guarantees another node") // lint:allow(panic-expect) — scenario validation rejects single-node topologies before flows are built
            } else {
                neighbors[rng.random_range(0..neighbors.len())]
            };
            flows.push(Flow {
                src: NodeId::new(i as u32),
                dst: NodeId::new(dst as u32),
                rate_bps,
                payload,
                measured: true,
            });
        }
        Topology { positions, flows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_geometry_matches_the_paper() {
        let t = Topology::star(8, 2_000_000, 512, false);
        assert_eq!(t.node_count(), 9);
        let r = t.positions[0];
        for k in 1..=8 {
            let d = r.distance_to(t.positions[k]).value();
            assert!((d - 150.0).abs() < 1e-9, "sender {k} at {d} m");
        }
        assert_eq!(t.measured_senders().len(), 8);
        assert!(t.flows.iter().all(|f| f.dst == NodeId::new(0)));
    }

    #[test]
    fn interferers_sit_500m_out() {
        let t = Topology::star(8, 2_000_000, 512, true);
        assert_eq!(t.node_count(), 13);
        let r = t.positions[0];
        for k in 9..13 {
            let d = r.distance_to(t.positions[k]).value();
            assert!((d - 502.5).abs() < 1.0, "interferer {k} at {d} m");
        }
        // A-B pair distance is 100 m.
        assert!((t.positions[9].distance_to(t.positions[10]).value() - 100.0).abs() < 1e-9);
        // Interferer flows are unmeasured and slower.
        let unmeasured: Vec<&Flow> = t.flows.iter().filter(|f| !f.measured).collect();
        assert_eq!(unmeasured.len(), 2);
        assert!(unmeasured.iter().all(|f| f.rate_bps == 500_000));
    }

    #[test]
    fn senders_are_equidistant_neighbors() {
        let t = Topology::star(8, 2_000_000, 512, false);
        // Adjacent senders on the circle: 2·150·sin(π/8) ≈ 114.8 m.
        let d = t.positions[1].distance_to(t.positions[2]).value();
        assert!((d - 114.8).abs() < 0.5, "adjacent distance {d}");
    }

    #[test]
    fn random_topology_is_reproducible_and_in_bounds() {
        let a = Topology::random(40, 1500.0, 700.0, 2_000_000, 512, MasterSeed::new(5));
        let b = Topology::random(40, 1500.0, 700.0, 2_000_000, 512, MasterSeed::new(5));
        assert_eq!(a, b, "same seed, same topology");
        let c = Topology::random(40, 1500.0, 700.0, 2_000_000, 512, MasterSeed::new(6));
        assert_ne!(a, c, "different seed, different topology");
        for p in &a.positions {
            assert!((0.0..=1500.0).contains(&p.x));
            assert!((0.0..=700.0).contains(&p.y));
        }
        assert_eq!(a.flows.len(), 40, "every node originates a flow");
        for f in &a.flows {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn random_flows_prefer_close_neighbors() {
        let t = Topology::random(40, 1500.0, 700.0, 2_000_000, 512, MasterSeed::new(7));
        let close = t
            .flows
            .iter()
            .filter(|f| {
                t.positions[f.src.index()]
                    .distance_to(t.positions[f.dst.index()])
                    .value()
                    <= 200.0
            })
            .count();
        assert!(
            close * 10 >= t.flows.len() * 7,
            "most flows should be within delivery range, got {close}/40"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn empty_star_rejected() {
        let _ = Topology::star(0, 1, 512, false);
    }
}
