//! CBR traffic generation.
//!
//! The paper's workload: every sender is backlogged with a constant
//! bit-rate flow (2 Mb/s, 512-byte packets, which saturates the 2 Mb/s
//! channel). A generator computes the inter-packet interval from the
//! flow's rate and packet size; the runner enqueues one packet per tick.
//! Flow starts are jittered within one interval so that generators do not
//! fire in lockstep.

use airguard_sim::{MasterSeed, SimDuration};
use rand::RngExt;

use crate::topology::Flow;

/// Per-flow traffic pacing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbrState {
    /// The flow being generated.
    pub flow: Flow,
    /// Interval between packets.
    pub interval: SimDuration,
    /// First enqueue time (jittered).
    pub start: SimDuration,
}

impl CbrState {
    /// Builds the pacing state for `flow`; `index` keys the jitter
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if the flow's rate or payload is zero.
    #[must_use]
    pub fn new(flow: Flow, index: usize, seed: MasterSeed) -> Self {
        assert!(flow.rate_bps > 0, "CBR flow needs a positive rate");
        assert!(flow.payload > 0, "CBR flow needs a positive payload");
        let bits = u64::from(flow.payload) * 8;
        let interval_micros = (bits * 1_000_000).div_ceil(flow.rate_bps);
        let interval = SimDuration::from_micros(interval_micros.max(1));
        let mut rng = seed.stream("traffic", index as u64);
        let start = SimDuration::from_micros(rng.random_range(0..interval_micros.max(2)));
        CbrState {
            flow,
            interval,
            start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_sim::NodeId;

    fn flow(rate_bps: u64, payload: u32) -> Flow {
        Flow {
            src: NodeId::new(1),
            dst: NodeId::new(0),
            rate_bps,
            payload,
            measured: true,
        }
    }

    #[test]
    fn paper_rate_interval() {
        // 512 B at 2 Mb/s: 4096 bits / 2e6 bps = 2048 µs.
        let s = CbrState::new(flow(2_000_000, 512), 0, MasterSeed::new(1));
        assert_eq!(s.interval, SimDuration::from_micros(2048));
        assert!(s.start < s.interval);
    }

    #[test]
    fn interferer_rate_interval() {
        // 512 B at 500 Kb/s: 8192 µs.
        let s = CbrState::new(flow(500_000, 512), 0, MasterSeed::new(1));
        assert_eq!(s.interval, SimDuration::from_micros(8192));
    }

    #[test]
    fn interval_rounds_up() {
        // 3 bytes at 7 bps: 24e6/7 ≈ 3428571.43 µs → rounds up.
        let s = CbrState::new(flow(7, 3), 0, MasterSeed::new(1));
        assert_eq!(s.interval, SimDuration::from_micros(3_428_572));
    }

    #[test]
    fn jitter_differs_across_flows() {
        let seed = MasterSeed::new(2);
        let starts: Vec<SimDuration> = (0..8)
            .map(|i| CbrState::new(flow(2_000_000, 512), i, seed).start)
            .collect();
        let distinct: std::collections::HashSet<u64> =
            starts.iter().map(|d| d.as_micros()).collect();
        assert!(distinct.len() > 1, "jitter must desynchronize flows");
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_rejected() {
        let _ = CbrState::new(flow(0, 512), 0, MasterSeed::new(1));
    }
}
