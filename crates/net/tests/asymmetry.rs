//! Statistical validation of the §5 carrier-sense asymmetry — the very
//! mechanism the TWO-FLOW scenario exists to create — plus scenario-level
//! consequences.

use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use airguard_phy::{Medium, PhyConfig};
use airguard_sim::{MasterSeed, NodeId};

#[test]
fn interferer_transmissions_reach_r_more_often_than_far_senders() {
    // Build the TWO-FLOW topology and measure, over many sampled
    // transmissions from interferer A (node 9), how often R (node 0)
    // senses them vs how often the *far-side* senders do.
    let topo = ScenarioConfig::new(StandardScenario::TwoFlow).build_topology();
    let mut medium = Medium::new(
        PhyConfig::paper_default(),
        topo.positions.clone(),
        MasterSeed::new(77).stream("asym", 0),
    );
    let a = NodeId::new(9); // interferer A, 500 m west of R
    let r = NodeId::new(0);
    // Far-side senders: the ones whose distance to A exceeds 600 m.
    let far: Vec<NodeId> = (1..=8u32)
        .map(NodeId::new)
        .filter(|&s| medium.position(a).distance_to(medium.position(s)).value() > 600.0)
        .collect();
    assert!(!far.is_empty(), "geometry must produce far-side senders");

    let n = 4_000;
    let mut r_sensed = 0u32;
    let mut far_sensed = 0u32;
    let mut far_total = 0u32;
    for _ in 0..n {
        let out = medium.start_tx(a);
        if out.listeners.iter().any(|l| l.listener == r) {
            r_sensed += 1;
        }
        for &s in &far {
            far_total += 1;
            if out.listeners.iter().any(|l| l.listener == s) {
                far_sensed += 1;
            }
        }
    }
    let p_r = f64::from(r_sensed) / f64::from(n);
    let p_far = f64::from(far_sensed) / f64::from(far_total);
    assert!(p_r > 0.7, "R should sense A with high probability: {p_r}");
    assert!(p_far < 0.2, "far senders should rarely sense A: {p_far}");
}

#[test]
fn two_flow_creates_misdiagnosis_zero_flow_does_not() {
    let zero = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .sim_time_secs(5)
        .seed(5)
        .run();
    let two = ScenarioConfig::new(StandardScenario::TwoFlow)
        .protocol(Protocol::Correct)
        .sim_time_secs(5)
        .seed(5)
        .run();
    assert_eq!(
        zero.diagnosis().misdiagnosis_percent(),
        0.0,
        "symmetric channel must not misdiagnose"
    );
    assert!(
        two.diagnosis().misdiagnosis_percent() > 2.0,
        "interferer flows must create false deviations, got {}",
        two.diagnosis().misdiagnosis_percent()
    );
}

#[test]
fn two_flow_lowers_aggregate_throughput() {
    let zero = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Dot11)
        .sim_time_secs(5)
        .seed(6)
        .run();
    let two = ScenarioConfig::new(StandardScenario::TwoFlow)
        .protocol(Protocol::Dot11)
        .sim_time_secs(5)
        .seed(6)
        .run();
    assert!(
        two.avg_throughput_bps() < zero.avg_throughput_bps(),
        "interferers must cost capacity: {} vs {}",
        two.avg_throughput_bps(),
        zero.avg_throughput_bps()
    );
}

#[test]
fn interferer_flows_do_not_count_as_measured() {
    let report = ScenarioConfig::new(StandardScenario::TwoFlow)
        .protocol(Protocol::Dot11)
        .sim_time_secs(3)
        .seed(7)
        .run();
    assert_eq!(report.measured_senders.len(), 8);
    assert!(report
        .measured_senders
        .iter()
        .all(|s| s.value() >= 1 && s.value() <= 8));
    // The interferer flows delivered traffic but are excluded from AVG.
    let a_to_b = report
        .throughput
        .flow(NodeId::new(9), NodeId::new(10))
        .expect("interferer flow ran");
    assert!(a_to_b.packets > 0);
}

#[test]
fn simulator_matches_analytic_saturation_model() {
    use airguard_mac::{ExchangeModel, MacTiming};
    use airguard_net::topology::Flow;
    use airguard_net::{NodePolicy, Simulation, SimulationConfig, Topology};
    use airguard_phy::Position;
    use airguard_sim::SimDuration;

    let topo = Topology {
        positions: vec![Position::new(0.0, 0.0), Position::new(150.0, 0.0)],
        flows: vec![Flow {
            src: NodeId::new(1),
            dst: NodeId::new(0),
            rate_bps: 2_000_000,
            payload: 512,
            measured: true,
        }],
    };
    let cfg = SimulationConfig {
        phy: PhyConfig::deterministic(),
        horizon: SimDuration::from_secs(10),
        seed: MasterSeed::new(3),
        ..SimulationConfig::default()
    };
    let policies = vec![
        NodePolicy::dot11(airguard_mac::Selfish::None),
        NodePolicy::dot11(airguard_mac::Selfish::None),
    ];
    let report = Simulation::new(cfg, topo, policies, vec![]).run();
    let measured = report
        .throughput
        .sender_throughput_bps(NodeId::new(1), report.elapsed);
    let analytic = ExchangeModel::new(&MacTiming::dsss_2mbps(), 512, false).saturation_bps(512);
    let ratio = measured / analytic;
    assert!(
        (0.95..=1.02).contains(&ratio),
        "simulated {measured} vs analytic {analytic} (ratio {ratio})"
    );
}
