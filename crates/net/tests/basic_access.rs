//! Basic (two-way) channel access: the paper's footnote 2 claims the
//! scheme applies without RTS/CTS; these tests exercise it end-to-end.

use airguard_mac::AccessMode;
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use airguard_phy::PhyConfig;
use airguard_sim::NodeId;

#[test]
fn basic_access_outperforms_four_way_for_one_sender() {
    let run = |access| {
        ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Dot11)
            .n_senders(1)
            .access(access)
            .phy(PhyConfig::deterministic())
            .sim_time_secs(5)
            .seed(1)
            .run()
    };
    let four_way = run(AccessMode::RtsCts)
        .throughput
        .sender_throughput_bps(NodeId::new(1), airguard_sim::SimDuration::from_secs(5));
    let basic = run(AccessMode::Basic)
        .throughput
        .sender_throughput_bps(NodeId::new(1), airguard_sim::SimDuration::from_secs(5));
    assert!(
        basic > 1.15 * four_way,
        "basic {basic} should beat four-way {four_way} without contention"
    );
    // And match the analytic model.
    let analytic = airguard_mac::ExchangeModel::with_access(
        &airguard_mac::MacTiming::dsss_2mbps(),
        512,
        false,
        AccessMode::Basic,
    )
    .saturation_bps(512);
    let ratio = basic / analytic;
    assert!((0.95..=1.02).contains(&ratio), "ratio {ratio}");
}

#[test]
fn detection_works_without_rts_cts() {
    let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .access(AccessMode::Basic)
        .misbehavior_percent(80.0)
        .sim_time_secs(5)
        .seed(2)
        .run();
    assert!(
        report.diagnosis().correct_diagnosis_percent() > 80.0,
        "basic-access detection: {}",
        report.diagnosis().correct_diagnosis_percent()
    );
    assert!(
        report.diagnosis().misdiagnosis_percent() < 2.0,
        "basic-access misdiagnosis: {}",
        report.diagnosis().misdiagnosis_percent()
    );
}

#[test]
fn correction_works_without_rts_cts() {
    let fair = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .access(AccessMode::Basic)
        .sim_time_secs(5)
        .seed(3)
        .run()
        .avg_throughput_bps();
    let cheat = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .access(AccessMode::Basic)
        .misbehavior_percent(60.0)
        .sim_time_secs(5)
        .seed(3)
        .run();
    assert!(
        cheat.msb_throughput_bps() < 1.5 * fair,
        "basic-access correction: MSB {} vs fair {fair}",
        cheat.msb_throughput_bps()
    );
}

#[test]
fn honest_basic_access_network_has_no_flags() {
    let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .access(AccessMode::Basic)
        .sim_time_secs(5)
        .seed(4)
        .run();
    assert_eq!(report.diagnosis().misdiagnosis_percent(), 0.0);
    assert_eq!(
        report.counters[1..].iter().map(|c| c.rts_sent).sum::<u64>(),
        0,
        "no RTS frames under basic access"
    );
}
