//! §4.4 collusion end-to-end: a cheating sender paired with a receiver
//! that strips penalties. The receiver's own monitor is useless by
//! construction; the third-party observer catches the pair.

use airguard_core::CorrectConfig;
use airguard_mac::Selfish;
use airguard_net::topology::Flow;
use airguard_net::{NodePolicy, RunReport, Simulation, SimulationConfig, Topology};
use airguard_phy::{PhyConfig, Position};
use airguard_sim::{MasterSeed, NodeId, SimDuration};

/// R(0) colludes with cheating S(1); honest H(2) also sends to R; O(3)
/// observes.
fn run(colluding: bool, seed: u64) -> RunReport {
    let topology = Topology {
        positions: vec![
            Position::new(0.0, 0.0),
            Position::new(120.0, 0.0),
            Position::new(0.0, 120.0),
            Position::new(60.0, 60.0),
        ],
        flows: vec![
            Flow {
                src: NodeId::new(1),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
            Flow {
                src: NodeId::new(2),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
        ],
    };
    let observer_cfg = CorrectConfig {
        observe_third_party: true,
        ..CorrectConfig::paper_default()
    };
    let receiver_strategy = if colluding {
        Selfish::NoPenalty
    } else {
        Selfish::None
    };
    let policies = vec![
        NodePolicy::correct(
            NodeId::new(0),
            CorrectConfig::paper_default(),
            receiver_strategy,
        ),
        NodePolicy::correct(
            NodeId::new(1),
            CorrectConfig::paper_default(),
            Selfish::BackoffScale { pm: 80.0 },
        ),
        NodePolicy::correct(
            NodeId::new(2),
            CorrectConfig::paper_default(),
            Selfish::None,
        ),
        NodePolicy::correct(NodeId::new(3), observer_cfg, Selfish::None),
    ];
    Simulation::new(
        SimulationConfig {
            phy: PhyConfig::paper_default(),
            horizon: SimDuration::from_secs(5),
            seed: MasterSeed::new(seed),
            ..SimulationConfig::default()
        },
        topology,
        policies,
        vec![NodeId::new(1)],
    )
    .run()
}

fn cheater_pair(report: &RunReport) -> airguard_core::PairStats {
    report.observers[0]
        .1
        .iter()
        .find(|p| p.sender == NodeId::new(1))
        .copied()
        .expect("cheater pair observed")
}

#[test]
fn collusion_preserves_the_cheaters_advantage() {
    let honest_rx = run(false, 1);
    let colluding_rx = run(true, 1);
    assert!(
        colluding_rx.msb_throughput_bps() > 1.5 * colluding_rx.avg_throughput_bps(),
        "with a colluding receiver the cheat must pay: MSB {} vs AVG {}",
        colluding_rx.msb_throughput_bps(),
        colluding_rx.avg_throughput_bps()
    );
    assert!(
        honest_rx.msb_throughput_bps() < 1.5 * honest_rx.avg_throughput_bps(),
        "an honest receiver corrects the same cheat"
    );
}

#[test]
fn observer_suspects_the_colluding_pair() {
    let report = run(true, 2);
    let pair = cheater_pair(&report);
    assert!(pair.deviations > 20, "observer measured {pair:?}");
    assert!(
        pair.collusion_suspected(),
        "unpunished deviations must implicate the pair: {pair:?}"
    );
}

#[test]
fn observer_clears_an_honest_receiver_of_collusion() {
    let report = run(false, 3);
    let pair = cheater_pair(&report);
    assert!(
        !pair.collusion_suspected(),
        "honest receiver penalizes, so no collusion: {pair:?}"
    );
}
