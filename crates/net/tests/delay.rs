//! MAC-delay consequences of misbehavior: the paper's "lower delay"
//! incentive and its correction.

use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

#[test]
fn cheater_steals_delay_under_dot11() {
    let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Dot11)
        .misbehavior_percent(70.0)
        .sim_time_secs(5)
        .seed(1)
        .run();
    // Under saturation the measured delay is dominated by queueing, so
    // the cheater's edge shows up as its (faster) service rate.
    assert!(
        report.msb_delay_ms() < 0.85 * report.avg_delay_ms(),
        "cheater delay {} should undercut honest {}",
        report.msb_delay_ms(),
        report.avg_delay_ms()
    );
}

#[test]
fn correction_takes_the_delay_advantage_back() {
    let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .misbehavior_percent(70.0)
        .sim_time_secs(5)
        .seed(1)
        .run();
    assert!(
        report.msb_delay_ms() > 0.8 * report.avg_delay_ms(),
        "corrected cheater delay {} vs honest {}",
        report.msb_delay_ms(),
        report.avg_delay_ms()
    );
}

#[test]
fn delays_are_positive_and_bounded_by_the_run() {
    let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .sim_time_secs(5)
        .seed(2)
        .run();
    let avg = report.avg_delay_ms();
    assert!(avg > 0.0);
    assert!(avg < 5_000.0, "mean delay {avg} ms exceeds the horizon");
}
