//! Smoke matrix: every scenario × protocol × access-mode × strategy
//! combination must run, deliver traffic, and keep its invariants.

use airguard_mac::{AccessMode, Selfish};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

#[test]
fn every_combination_runs_and_delivers() {
    let scenarios = [
        StandardScenario::ZeroFlow,
        StandardScenario::TwoFlow,
        StandardScenario::Random,
    ];
    let protocols = [Protocol::Dot11, Protocol::Correct];
    let access_modes = [AccessMode::RtsCts, AccessMode::Basic];
    let strategies = [
        Selfish::None,
        Selfish::BackoffScale { pm: 60.0 },
        Selfish::QuarterWindow,
        Selfish::NoDoubling,
        Selfish::AttemptSpoof { pm: 60.0 },
    ];
    let mut seed = 100;
    for scenario in scenarios {
        for protocol in protocols {
            for access in access_modes {
                for strategy in strategies {
                    seed += 1;
                    let label = format!("{scenario:?}/{protocol:?}/{access:?}/{strategy:?}");
                    let report = ScenarioConfig::new(scenario)
                        .protocol(protocol)
                        .strategy(strategy)
                        .access(access)
                        .random_nodes(12, 2)
                        .sim_time_secs(1)
                        .seed(seed)
                        .run();
                    assert!(
                        report.throughput.total_bytes() > 0,
                        "{label}: nothing delivered"
                    );
                    let cd = report.diagnosis().correct_diagnosis_percent();
                    let md = report.diagnosis().misdiagnosis_percent();
                    assert!((0.0..=100.0).contains(&cd), "{label}: correct% {cd}");
                    assert!((0.0..=100.0).contains(&md), "{label}: misdiag% {md}");
                    let fi = report.fairness_index();
                    assert!((0.0..=1.0 + 1e-9).contains(&fi), "{label}: fi {fi}");
                    if protocol == Protocol::Dot11 {
                        assert!(report.monitors.is_empty(), "{label}: baseline monitors");
                    } else {
                        assert!(!report.monitors.is_empty(), "{label}: missing monitors");
                    }
                }
            }
        }
    }
}
