//! End-to-end third-party observation: a bystander node independently
//! detects a cheating sender from overheard frames only.

use airguard_core::CorrectConfig;
use airguard_mac::Selfish;
use airguard_net::topology::Flow;
use airguard_net::{NodePolicy, Simulation, SimulationConfig, Topology};
use airguard_phy::{PhyConfig, Position};
use airguard_sim::{MasterSeed, NodeId, SimDuration};

/// R at origin, cheating sender S, honest sender H, and a silent
/// observer O — all within reliable decode range of each other.
fn topology() -> Topology {
    Topology {
        positions: vec![
            Position::new(0.0, 0.0),   // R
            Position::new(120.0, 0.0), // S (cheater)
            Position::new(0.0, 120.0), // H
            Position::new(60.0, 60.0), // O (observer, no traffic)
        ],
        flows: vec![
            Flow {
                src: NodeId::new(1),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
            Flow {
                src: NodeId::new(2),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
        ],
    }
}

fn run(pm: f64, seed: u64) -> airguard_net::RunReport {
    let observer_cfg = CorrectConfig {
        observe_third_party: true,
        ..CorrectConfig::paper_default()
    };
    let policies = vec![
        NodePolicy::correct(
            NodeId::new(0),
            CorrectConfig::paper_default(),
            Selfish::None,
        ),
        NodePolicy::correct(
            NodeId::new(1),
            CorrectConfig::paper_default(),
            if pm > 0.0 {
                Selfish::BackoffScale { pm }
            } else {
                Selfish::None
            },
        ),
        NodePolicy::correct(
            NodeId::new(2),
            CorrectConfig::paper_default(),
            Selfish::None,
        ),
        NodePolicy::correct(NodeId::new(3), observer_cfg, Selfish::None),
    ];
    Simulation::new(
        SimulationConfig {
            phy: PhyConfig::paper_default(),
            horizon: SimDuration::from_secs(5),
            seed: MasterSeed::new(seed),
            ..SimulationConfig::default()
        },
        topology(),
        policies,
        if pm > 0.0 {
            vec![NodeId::new(1)]
        } else {
            vec![]
        },
    )
    .run()
}

#[test]
fn observer_sees_the_pairs() {
    let report = run(0.0, 1);
    let (_, pairs) = report
        .observers
        .iter()
        .find(|(n, _)| *n == NodeId::new(3))
        .expect("observer node reports");
    // Both sender→receiver pairs were overheard.
    assert!(pairs
        .iter()
        .any(|p| p.sender == NodeId::new(1) && p.receiver == NodeId::new(0)));
    assert!(pairs
        .iter()
        .any(|p| p.sender == NodeId::new(2) && p.receiver == NodeId::new(0)));
}

#[test]
fn observer_exonerates_honest_senders() {
    let report = run(0.0, 2);
    let (_, pairs) = &report.observers[0];
    for p in pairs {
        let flag_rate = p.flagged as f64 / p.measured.max(1) as f64;
        assert!(
            flag_rate < 0.05,
            "honest pair {}->{} flagged at {flag_rate}",
            p.sender,
            p.receiver
        );
        assert!(!p.collusion_suspected());
    }
}

#[test]
fn observer_flags_the_cheater_from_outside() {
    let report = run(80.0, 3);
    let (_, pairs) = &report.observers[0];
    let cheat = pairs
        .iter()
        .find(|p| p.sender == NodeId::new(1))
        .expect("cheater pair observed");
    let honest = pairs
        .iter()
        .find(|p| p.sender == NodeId::new(2))
        .expect("honest pair observed");
    assert!(
        cheat.measured > 50,
        "too few measurements: {}",
        cheat.measured
    );
    let cheat_rate = cheat.flagged as f64 / cheat.measured as f64;
    let honest_rate = honest.flagged as f64 / honest.measured.max(1) as f64;
    assert!(
        cheat_rate > 0.6,
        "observer flag rate on cheater only {cheat_rate}"
    );
    assert!(honest_rate < 0.1, "observer flags honest at {honest_rate}");
    // The receiver *is* punishing (honest receiver), so no collusion.
    assert!(!cheat.collusion_suspected());
}
