//! Sharded spatial runs: worker-count byte-identity and equivalence to
//! the monolithic spatial simulation.
//!
//! Two separate claims, tested separately:
//!
//! 1. **Worker-count identity** — a sharded run's `RunSummary` JSON and
//!    its full trace are byte-identical at 1, 2, 4, and 8 workers. The
//!    decomposition never looks at the worker count and the merge is in
//!    component order, so this must hold bit-for-bit.
//! 2. **Sharded = monolithic** — the merged summary equals the summary
//!    of one monolithic spatial `Simulation` over the whole topology.
//!    Spatial sampling keys every draw by the global (tx, rx) pair, so
//!    out-of-range components cannot perturb each other. (Trace bytes
//!    are excluded from this claim: cross-component events with equal
//!    timestamps interleave differently in one scheduler than in the
//!    component-ordered merge.)

use airguard_core::CorrectConfig;
use airguard_fault::{ClockDrift, CrashEvent, FaultPlan};
use airguard_mac::Selfish;
use airguard_net::{NodePolicy, Protocol, ScenarioConfig, Simulation, StandardScenario};
use airguard_sim::trace::TraceEvent;
use airguard_sim::{NodeId, SimDuration};

/// A campus scenario small enough for a test, big enough to decompose:
/// clusters sit 3 km apart, far beyond the ~1.1 km interference cutoff.
fn campus(workers: usize) -> ScenarioConfig {
    ScenarioConfig::new(StandardScenario::Campus)
        .protocol(Protocol::Correct)
        .misbehavior_percent(50.0)
        .random_nodes(160, 5) // 4 clusters of 40
        .sim_time_secs(1)
        .seed(11)
        .spatial(true)
        .shard_workers(workers)
}

fn render(events: &[TraceEvent]) -> String {
    events
        .iter()
        .map(|e| format!("{} {} {}\n", e.time, e.category, e.detail))
        .collect()
}

#[test]
fn summary_and_trace_are_byte_identical_across_worker_counts() {
    let (baseline_report, baseline_trace) = campus(1).run_traced();
    let baseline_json = baseline_report.summary.to_json();
    let baseline_rendered = render(&baseline_trace);
    assert!(
        baseline_report.throughput.total_bytes() > 0,
        "campus clusters must carry traffic"
    );
    assert!(!baseline_trace.is_empty(), "traced run must capture events");
    for workers in [2, 4, 8] {
        let (report, trace) = campus(workers).run_traced();
        assert_eq!(
            report.summary.to_json(),
            baseline_json,
            "summary diverged at {workers} workers"
        );
        assert_eq!(
            render(&trace),
            baseline_rendered,
            "trace diverged at {workers} workers"
        );
    }
}

#[test]
fn sharded_report_matches_monolithic_spatial_run() {
    let cfg = campus(4);
    let sharded = cfg.run();
    // The monolithic reference: one Simulation over the full topology
    // with the same spatial config — no decomposition at all. The
    // policy assignment below mirrors what the scenario builds for
    // Protocol::Correct with a 50% backoff-scale misbehaver set.
    let topology = cfg.build_topology();
    let misbehaving = cfg.misbehaving_set(&topology);
    let policies: Vec<NodePolicy> = (0..topology.node_count())
        .map(|i| {
            let id = NodeId::new(i as u32);
            let strategy = if misbehaving.contains(&id) {
                Selfish::BackoffScale { pm: 50.0 }
            } else {
                Selfish::None
            };
            NodePolicy::correct(id, CorrectConfig::paper_default(), strategy)
        })
        .collect();
    let mono = Simulation::new(
        cfg.simulation_config(),
        topology,
        policies,
        misbehaving.clone(),
    )
    .run();
    assert_eq!(
        sharded.summary.to_json(),
        mono.summary.to_json(),
        "sharded merge must reproduce the monolithic spatial summary"
    );
    assert_eq!(sharded.events, mono.events);
    assert_eq!(sharded.throughput, mono.throughput);
    assert_eq!(sharded.tally, mono.tally);
    assert_eq!(sharded.delays, mono.delays);
    assert_eq!(sharded.counters, mono.counters);
    assert_eq!(sharded.misbehaving, misbehaving);
}

/// Churn in clusters 0 and 2, drift in clusters 1 and 3 — every
/// component both keeps a fault aimed at it and must drop the others'.
fn campus_fault_plan() -> FaultPlan {
    FaultPlan {
        churn: vec![
            CrashEvent {
                node: 10,
                at: SimDuration::from_millis(200),
                down_for: SimDuration::from_millis(300),
                preserve_monitor: false,
            },
            CrashEvent {
                node: 95,
                at: SimDuration::from_millis(400),
                down_for: SimDuration::from_millis(250),
                preserve_monitor: true,
            },
        ],
        clock_drift: Some(ClockDrift {
            per_mille: 20,
            nodes: vec![50, 130],
        }),
        ..FaultPlan::default()
    }
}

#[test]
fn faulted_sharded_run_matches_monolithic_and_worker_counts() {
    // Regression: fault plans were once restricted against a global
    // local-index map, so every component re-applied every churn event
    // to whichever of its nodes happened to share a local rank — or
    // panicked when the rank exceeded the component size. A faulted
    // sharded run must stay byte-identical across worker counts *and*
    // equal to the monolithic spatial run of the same plan.
    let faulted = |workers| {
        campus(workers)
            .fault(campus_fault_plan())
            .expect("plan targets valid nodes")
    };
    let sharded = faulted(1).run();
    assert!(
        sharded.throughput.total_bytes() > 0,
        "faulted campus still carries traffic"
    );
    for workers in [2, 4] {
        assert_eq!(
            faulted(workers).run().summary.to_json(),
            sharded.summary.to_json(),
            "faulted summary diverged at {workers} workers"
        );
    }
    let cfg = faulted(4);
    let topology = cfg.build_topology();
    let misbehaving = cfg.misbehaving_set(&topology);
    let policies: Vec<NodePolicy> = (0..topology.node_count())
        .map(|i| {
            let id = NodeId::new(i as u32);
            let strategy = if misbehaving.contains(&id) {
                Selfish::BackoffScale { pm: 50.0 }
            } else {
                Selfish::None
            };
            NodePolicy::correct(id, CorrectConfig::paper_default(), strategy)
        })
        .collect();
    let mono = Simulation::new(
        cfg.simulation_config(),
        topology,
        policies,
        misbehaving.clone(),
    )
    .run();
    assert_eq!(
        sharded.summary.to_json(),
        mono.summary.to_json(),
        "faulted sharded merge must reproduce the monolithic spatial summary"
    );
    assert_eq!(sharded.events, mono.events);
    assert_eq!(sharded.throughput, mono.throughput);
    assert_eq!(sharded.counters, mono.counters);
}

#[test]
fn sharded_runs_honor_the_detector_choice_at_any_worker_count() {
    // Swapping the deviation detector moves boxed per-sender state
    // across the shard worker threads; the decomposition and merge must
    // stay byte-identical, and the choice must actually take effect.
    let cusum = |workers: usize| {
        campus(workers)
            .detector(airguard_core::DetectorConfig::from_kind("cusum").expect("known detector"))
    };
    let baseline = cusum(1).run();
    let baseline_json = baseline.summary.to_json();
    for workers in [2, 4, 8] {
        assert_eq!(
            cusum(workers).run().summary.to_json(),
            baseline_json,
            "cusum sharded summary diverged at {workers} workers"
        );
    }
    // The detector is not cosmetic: the cusum campus run forks both the
    // cache digest and the simulated outcome from the window default.
    let window = campus(1).run();
    assert_ne!(cusum(1).config_digest(), campus(1).config_digest());
    assert_ne!(
        baseline_json,
        window.summary.to_json(),
        "cusum must classify the campus cheaters differently"
    );
}

#[test]
fn non_spatial_runs_are_untouched_by_the_shard_knobs() {
    // The worker knob must be inert off the spatial path: the classic
    // monolithic runner handles the scenario and any worker count is
    // byte-identical to the default.
    let base = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .n_senders(2)
        .sim_time_secs(1)
        .seed(3);
    let plain = base.run();
    let with_workers = base.clone().shard_workers(8).run();
    assert_eq!(plain.summary.to_json(), with_workers.summary.to_json());
    // And the knob never enters the identity.
    assert_eq!(
        base.config_digest(),
        base.clone().shard_workers(8).config_digest()
    );
}
