//! Stress and degenerate-geometry tests: the runner must survive
//! pathological placements and extreme parameters without panicking or
//! violating conservation.

use airguard_core::CorrectConfig;
use airguard_mac::Selfish;
use airguard_net::topology::Flow;
use airguard_net::{NodePolicy, Simulation, SimulationConfig, Topology};
use airguard_phy::{PhyConfig, Position};
use airguard_sim::{MasterSeed, NodeId, SimDuration};

fn correct(n: u32) -> Vec<NodePolicy> {
    (0..n)
        .map(|i| {
            NodePolicy::correct(
                NodeId::new(i),
                CorrectConfig::paper_default(),
                Selfish::None,
            )
        })
        .collect()
}

fn run(topology: &Topology, seed: u64) -> airguard_net::RunReport {
    let n = topology.node_count() as u32;
    Simulation::new(
        SimulationConfig {
            phy: PhyConfig::paper_default(),
            horizon: SimDuration::from_secs(1),
            seed: MasterSeed::new(seed),
            ..SimulationConfig::default()
        },
        topology.clone(),
        correct(n),
        vec![],
    )
    .run()
}

#[test]
fn co_located_nodes_do_not_panic() {
    let topology = Topology {
        positions: vec![Position::new(10.0, 10.0); 4],
        flows: vec![
            Flow {
                src: NodeId::new(1),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
            Flow {
                src: NodeId::new(2),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
            Flow {
                src: NodeId::new(3),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
        ],
    };
    let report = run(&topology, 1);
    assert!(report.throughput.total_bytes() > 0);
}

#[test]
fn nodes_far_out_of_range_simply_starve() {
    let topology = Topology {
        positions: vec![Position::new(0.0, 0.0), Position::new(5_000.0, 0.0)],
        flows: vec![Flow {
            src: NodeId::new(1),
            dst: NodeId::new(0),
            rate_bps: 2_000_000,
            payload: 512,
            measured: true,
        }],
    };
    let report = run(&topology, 2);
    assert_eq!(report.throughput.total_bytes(), 0, "5 km link must fail");
    // The sender burned its retries, nothing crashed.
    assert!(report.counters[1].retry_drops > 0);
}

#[test]
fn tiny_payloads_and_many_flows() {
    // 12 nodes in a tight cluster, everyone sends tiny packets to
    // everyone's neighbor; exercises queue churn and dense contention.
    let positions: Vec<Position> = (0..12)
        .map(|i| Position::new(f64::from(i % 4) * 40.0, f64::from(i / 4) * 40.0))
        .collect();
    let flows: Vec<Flow> = (0..12u32)
        .map(|i| Flow {
            src: NodeId::new(i),
            dst: NodeId::new((i + 1) % 12),
            rate_bps: 500_000,
            payload: 32,
            measured: true,
        })
        .collect();
    let topology = Topology { positions, flows };
    let report = run(&topology, 3);
    assert!(report.throughput.total_bytes() > 0);
    // Duplicate filtering and retry limits stayed consistent for all.
    for c in &report.counters {
        assert!(c.queue_drops < 100_000);
    }
}

#[test]
fn bidirectional_flows_between_two_nodes() {
    // Both nodes are simultaneously sender and receiver — the dual-role
    // path (responding while backing off) gets heavy exercise.
    let topology = Topology {
        positions: vec![Position::new(0.0, 0.0), Position::new(100.0, 0.0)],
        flows: vec![
            Flow {
                src: NodeId::new(0),
                dst: NodeId::new(1),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
            Flow {
                src: NodeId::new(1),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
        ],
    };
    let report = run(&topology, 4);
    let a = report
        .throughput
        .flow(NodeId::new(0), NodeId::new(1))
        .map_or(0, |f| f.packets);
    let b = report
        .throughput
        .flow(NodeId::new(1), NodeId::new(0))
        .map_or(0, |f| f.packets);
    assert!(a > 50 && b > 50, "both directions must flow: {a}/{b}");
    // Neither side misdiagnoses the other.
    for (_, m) in &report.monitors {
        for s in &m.senders {
            assert_eq!(s.flagged_packets, 0, "false flag on {}", s.node);
        }
    }
}

#[test]
fn long_horizon_many_senders_is_stable() {
    let topology = Topology::star(24, 2_000_000, 512, false);
    let report = Simulation::new(
        SimulationConfig {
            phy: PhyConfig::paper_default(),
            horizon: SimDuration::from_secs(3),
            seed: MasterSeed::new(5),
            ..SimulationConfig::default()
        },
        topology,
        correct(25),
        vec![],
    )
    .run();
    // Short-horizon Jain index for 24 saturated senders spans ~0.82-0.91
    // across seeds; 0.80 still catches starvation while staying clear of
    // per-seed variance.
    assert!(
        report.fairness_index() > 0.80,
        "fi={}",
        report.fairness_index()
    );
    assert_eq!(report.diagnosis().misdiagnosis_percent(), 0.0);
}
