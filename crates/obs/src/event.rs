//! Typed telemetry events.
//!
//! Every observable protocol transition is a variant of [`ObsEvent`]
//! carrying structured fields. Events are grouped into [`Category`]s
//! (one bit each in the sink's enable mask) so emission can be gated
//! per-category with a single atomic load.
//!
//! The crate is a dependency leaf, so events speak raw scalars: virtual
//! time in microseconds (`time_us`) and node ids as dense `u32` indices
//! (`node`). The `Display` impls render the same human-readable prose
//! the legacy string trace produced, which keeps log-scraping tests and
//! examples working unchanged.

use std::fmt;

/// Sentinel node id for records not attributable to a single node
/// (free-form notes, simulator-level events).
pub const NO_NODE: u32 = u32::MAX;

/// Pack an exchange id from the originating sender and its packet
/// sequence number.
///
/// One RTS→CTS→DATA→ACK handshake is identified by who started it and
/// which head-of-line packet it carries, so `(src, seq)` is stable
/// across every leg of the exchange — the receiver's CTS/ACK carry the
/// *sender's* id, not their own. Packed rather than a struct so the id
/// rides in one `u64` JSONL field and one trace-event arg. 24 bits of
/// station id (the repo's topologies are dense indices well under
/// 2^24) and 40 bits of sequence (2^40 packets outlives any horizon);
/// both truncations wrap rather than panic, which at worst aliases two
/// exchanges in a pathological run — acceptable for telemetry.
#[must_use]
pub const fn exchange_id(src: u32, seq: u64) -> u64 {
    (((src & 0x00FF_FFFF) as u64) << 40) | (seq & 0xFF_FFFF_FFFF)
}

/// The station id packed into an exchange id by [`exchange_id`].
#[must_use]
pub const fn exchange_src(xid: u64) -> u32 {
    (xid >> 40) as u32
}

/// The sequence number packed into an exchange id by [`exchange_id`].
#[must_use]
pub const fn exchange_seq(xid: u64) -> u64 {
    xid & 0xFF_FFFF_FFFF
}

/// Event category — one bit in the sink's enable mask.
///
/// `name()` returns the dotted string the legacy trace used for the
/// same traffic (`"mac.tx"`, `"phy.decode"`, …), so category filters
/// written against the old API keep matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// Frames handed to the transmitter (RTS/CTS/DATA/ACK starts).
    MacTx = 0,
    /// Frames accepted or rejected by the receive path.
    MacRx = 1,
    /// Fresh backoff draws.
    MacBackoff = 2,
    /// Retry backoffs after CTS/ACK timeouts.
    MacRetry = 3,
    /// Packets dropped at the retry limit.
    MacDrop = 4,
    /// Attempt-verification probes (receiver pretends the RTS was lost).
    MacProbe = 5,
    /// Deferred transmissions (transmitter busy).
    MacDefer = 6,
    /// Receiver-side monitor observations (deviation, penalty, diagnosis).
    Monitor = 7,
    /// PHY collisions (capture losses, self-tx garbling).
    PhyCollision = 8,
    /// PHY decode outcomes.
    PhyDecode = 9,
    /// Simulator bookkeeping.
    Sim = 10,
    /// Free-form string notes from the legacy `Trace::record` API.
    Note = 11,
    /// Injected faults (burst loss, churn, corruption, clock drift).
    Fault = 12,
    /// The live streaming service's robustness decisions (shedding,
    /// quarantine, checkpoints, source supervision).
    Live = 13,
}

impl Category {
    /// All categories, in bit order.
    pub const ALL: [Category; 14] = [
        Category::MacTx,
        Category::MacRx,
        Category::MacBackoff,
        Category::MacRetry,
        Category::MacDrop,
        Category::MacProbe,
        Category::MacDefer,
        Category::Monitor,
        Category::PhyCollision,
        Category::PhyDecode,
        Category::Sim,
        Category::Note,
        Category::Fault,
        Category::Live,
    ];

    /// This category's bit in the sink enable mask.
    #[must_use]
    pub const fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// The category whose [`Category::name`] equals `name`, if any.
    ///
    /// The inverse of `name()`; lets config layers (e.g. a lint scope or
    /// a CLI `--events` filter) validate dotted category strings.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.name() == name)
    }

    /// The dotted name used by the legacy string trace.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Category::MacTx => "mac.tx",
            Category::MacRx => "mac.rx",
            Category::MacBackoff => "mac.backoff",
            Category::MacRetry => "mac.retry",
            Category::MacDrop => "mac.drop",
            Category::MacProbe => "mac.probe",
            Category::MacDefer => "mac.defer",
            Category::Monitor => "monitor",
            Category::PhyCollision => "phy.collision",
            Category::PhyDecode => "phy.decode",
            Category::Sim => "sim",
            Category::Note => "note",
            Category::Fault => "fault",
            Category::Live => "live",
        }
    }
}

/// A structured telemetry event.
///
/// Variants mirror the protocol points the paper's evaluation measures:
/// the RTS/CTS/DATA/ACK exchange, backoff draws and retries, and the
/// receiver-side monitor's deviation/penalty/diagnosis decisions.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// Sender put an RTS on the air.
    RtsTx {
        dst: u32,
        seq: u64,
        attempt: u8,
        xid: u64,
    },
    /// Sender put a DATA frame on the air (Basic access or after CTS).
    DataTx {
        dst: u32,
        seq: u64,
        attempt: u8,
        xid: u64,
    },
    /// Receiver put a CTS on the air.
    CtsTx { dst: u32, xid: u64 },
    /// Receiver put an ACK on the air.
    AckTx { dst: u32, xid: u64 },
    /// Sender decoded the CTS answering its RTS.
    CtsRx { src: u32, seq: u64, xid: u64 },
    /// Sender decoded the ACK completing an exchange.
    AckRx { src: u32, seq: u64, xid: u64 },
    /// RTS ignored because the NAV shows the medium busy or a response
    /// is already pending.
    RtsIgnored { src: u32 },
    /// DATA arrived while a response was pending; the ACK was dropped.
    AckSuppressed { src: u32 },
    /// Attempt-verification probe: the receiver intentionally dropped
    /// an RTS to test the sender's retry behaviour (paper §4.1).
    ProbeDropped { src: u32 },
    /// Fresh backoff drawn for a new head-of-line packet.
    BackoffDrawn { dst: u32, slots: u32 },
    /// Retry backoff after a CTS (`ack == false`) or ACK timeout.
    Retry { ack: bool, attempt: u8, slots: u32 },
    /// Packet dropped at the retry limit.
    PacketDropped { seq: u64, attempts: u8 },
    /// Transmission deferred because the transmitter was busy; a
    /// deferred `response` frame is dropped outright.
    Deferred { response: bool },
    /// Receiver-side monitor compared the backoff it assigned against
    /// the idle time it observed before the sender's access.
    BackoffAssigned {
        src: u32,
        assigned_slots: f64,
        observed_slots: f64,
        xid: u64,
    },
    /// Monitor added a penalty to the sender's next assigned backoff.
    PenaltyAdded {
        src: u32,
        penalty_slots: f64,
        assigned_slots: f64,
        observed_slots: f64,
        xid: u64,
    },
    /// Diagnosis window crossed THRESH: the sender is flagged as
    /// misbehaving.
    DiagnosisFlagged { src: u32, window_sum: f64, xid: u64 },
    /// PHY: locked reception garbled by a newcomer (`culprit`) or by
    /// the node's own transmission (`None`).
    Collision {
        victim_tx: u64,
        culprit_tx: Option<u64>,
    },
    /// PHY: locked reception completed, cleanly or garbled.
    Decode { tx: u64, clean: bool },
    /// Free-form note from the legacy `Trace::record` API.
    Note { category: String, detail: String },
    /// Fault injector: the burst-loss channel dropped a frame that was
    /// otherwise receivable at `listener`.
    FaultFrameLost { listener: u32, tx: u64 },
    /// Fault injector: a delivered frame's assigned-backoff field was
    /// corrupted in flight.
    FaultCorruptedBackoff {
        listener: u32,
        original_slots: u32,
        corrupted_slots: u32,
    },
    /// Fault injector: a delivered frame's attempt field was corrupted
    /// in flight.
    FaultCorruptedAttempt {
        listener: u32,
        original: u8,
        corrupted: u8,
    },
    /// Fault injector: the node crashed (MAC state wiped; `cold` when
    /// its diagnosis tables were lost too).
    FaultNodeDown { cold: bool },
    /// Fault injector: the node restarted after a crash.
    FaultNodeUp { downtime_us: u64 },
    /// Live service: an overflowing shard queue dropped its oldest
    /// queued observation (drop-oldest overflow policy). Never silent:
    /// one event per shed decision.
    LiveShedDropped { shard: u32, station: u32 },
    /// Live service: an overflowing shard queue degraded to sampling,
    /// keeping one observation in `sample_every` until pressure eases.
    LiveDegraded { shard: u32, sample_every: u32 },
    /// Live service: an undecodable or out-of-range feed record was
    /// quarantined (`record` is its index in the source stream).
    LiveQuarantined { source: u32, record: u64 },
    /// Live service: a failed source was re-opened after exponential
    /// backoff.
    LiveSourceReopened {
        source: u32,
        attempt: u32,
        backoff_ms: u64,
    },
    /// Live service: a crash-safe checkpoint covering `consumed` input
    /// records and `stations` monitored stations was committed.
    LiveCheckpointWritten { consumed: u64, stations: u64 },
    /// Live service: the watchdog quarantined a shard that stopped
    /// making progress while holding pending input; the remaining
    /// shards keep serving.
    LiveShardQuarantined { shard: u32, stalled_ms: u64 },
}

impl ObsEvent {
    /// The category (and so the enable-mask bit) this event belongs to.
    #[must_use]
    pub fn category(&self) -> Category {
        match self {
            ObsEvent::RtsTx { .. }
            | ObsEvent::DataTx { .. }
            | ObsEvent::CtsTx { .. }
            | ObsEvent::AckTx { .. } => Category::MacTx,
            ObsEvent::CtsRx { .. }
            | ObsEvent::AckRx { .. }
            | ObsEvent::RtsIgnored { .. }
            | ObsEvent::AckSuppressed { .. } => Category::MacRx,
            ObsEvent::BackoffDrawn { .. } => Category::MacBackoff,
            ObsEvent::Retry { .. } => Category::MacRetry,
            ObsEvent::PacketDropped { .. } => Category::MacDrop,
            ObsEvent::ProbeDropped { .. } => Category::MacProbe,
            ObsEvent::Deferred { .. } => Category::MacDefer,
            ObsEvent::BackoffAssigned { .. }
            | ObsEvent::PenaltyAdded { .. }
            | ObsEvent::DiagnosisFlagged { .. } => Category::Monitor,
            ObsEvent::Collision { .. } => Category::PhyCollision,
            ObsEvent::Decode { .. } => Category::PhyDecode,
            ObsEvent::Note { .. } => Category::Note,
            ObsEvent::FaultFrameLost { .. }
            | ObsEvent::FaultCorruptedBackoff { .. }
            | ObsEvent::FaultCorruptedAttempt { .. }
            | ObsEvent::FaultNodeDown { .. }
            | ObsEvent::FaultNodeUp { .. } => Category::Fault,
            ObsEvent::LiveShedDropped { .. }
            | ObsEvent::LiveDegraded { .. }
            | ObsEvent::LiveQuarantined { .. }
            | ObsEvent::LiveSourceReopened { .. }
            | ObsEvent::LiveCheckpointWritten { .. }
            | ObsEvent::LiveShardQuarantined { .. } => Category::Live,
        }
    }

    /// A stable lowercase name for the variant (used as the JSONL
    /// `event` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::RtsTx { .. } => "rts_tx",
            ObsEvent::DataTx { .. } => "data_tx",
            ObsEvent::CtsTx { .. } => "cts_tx",
            ObsEvent::AckTx { .. } => "ack_tx",
            ObsEvent::CtsRx { .. } => "cts_rx",
            ObsEvent::AckRx { .. } => "ack_rx",
            ObsEvent::RtsIgnored { .. } => "rts_ignored",
            ObsEvent::AckSuppressed { .. } => "ack_suppressed",
            ObsEvent::ProbeDropped { .. } => "probe_dropped",
            ObsEvent::BackoffDrawn { .. } => "backoff_drawn",
            ObsEvent::Retry { .. } => "retry",
            ObsEvent::PacketDropped { .. } => "packet_dropped",
            ObsEvent::Deferred { .. } => "deferred",
            ObsEvent::BackoffAssigned { .. } => "backoff_assigned",
            ObsEvent::PenaltyAdded { .. } => "penalty_added",
            ObsEvent::DiagnosisFlagged { .. } => "diagnosis_flagged",
            ObsEvent::Collision { .. } => "collision",
            ObsEvent::Decode { .. } => "decode",
            ObsEvent::Note { .. } => "note",
            ObsEvent::FaultFrameLost { .. } => "fault_frame_lost",
            ObsEvent::FaultCorruptedBackoff { .. } => "fault_corrupted_backoff",
            ObsEvent::FaultCorruptedAttempt { .. } => "fault_corrupted_attempt",
            ObsEvent::FaultNodeDown { .. } => "fault_node_down",
            ObsEvent::FaultNodeUp { .. } => "fault_node_up",
            ObsEvent::LiveShedDropped { .. } => "shed_dropped",
            ObsEvent::LiveDegraded { .. } => "degraded_sampling",
            ObsEvent::LiveQuarantined { .. } => "quarantined",
            ObsEvent::LiveSourceReopened { .. } => "source_reopened",
            ObsEvent::LiveCheckpointWritten { .. } => "checkpoint_written",
            ObsEvent::LiveShardQuarantined { .. } => "shard_quarantined",
        }
    }

    /// The exchange id threaded through the RTS→CTS→DATA→ACK handshake
    /// and the monitor observations it triggers, if this variant
    /// carries one.
    #[must_use]
    pub fn xid(&self) -> Option<u64> {
        match self {
            ObsEvent::RtsTx { xid, .. }
            | ObsEvent::DataTx { xid, .. }
            | ObsEvent::CtsTx { xid, .. }
            | ObsEvent::AckTx { xid, .. }
            | ObsEvent::CtsRx { xid, .. }
            | ObsEvent::AckRx { xid, .. }
            | ObsEvent::BackoffAssigned { xid, .. }
            | ObsEvent::PenaltyAdded { xid, .. }
            | ObsEvent::DiagnosisFlagged { xid, .. } => Some(*xid),
            _ => None,
        }
    }
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsEvent::RtsTx { dst, seq, attempt, .. } => {
                write!(f, "Rts(seq={seq}, attempt={attempt}) -> n{dst}")
            }
            ObsEvent::DataTx { dst, seq, attempt, .. } => {
                write!(f, "Data(seq={seq}, attempt={attempt}) -> n{dst}")
            }
            ObsEvent::CtsTx { dst, .. } => write!(f, "Cts -> n{dst}"),
            ObsEvent::AckTx { dst, .. } => write!(f, "Ack -> n{dst}"),
            ObsEvent::CtsRx { src, seq, .. } => {
                write!(f, "CTS from n{src}, sending DATA seq={seq}")
            }
            ObsEvent::AckRx { src, seq, .. } => write!(f, "ACK from n{src} for seq={seq}"),
            ObsEvent::RtsIgnored { src } => {
                write!(f, "RTS from n{src} ignored (nav/pending)")
            }
            ObsEvent::AckSuppressed { src } => {
                write!(f, "DATA from n{src} but response pending; ACK dropped")
            }
            ObsEvent::ProbeDropped { src } => {
                write!(f, "RTS from n{src} intentionally dropped")
            }
            ObsEvent::BackoffDrawn { dst, slots } => {
                write!(f, "fresh backoff {slots} slots to n{dst}")
            }
            ObsEvent::Retry {
                ack,
                attempt,
                slots,
            } => {
                let kind = if *ack { "ACK" } else { "CTS" };
                write!(f, "{kind} timeout, attempt={attempt} backoff {slots} slots")
            }
            ObsEvent::PacketDropped { seq, attempts } => {
                write!(f, "seq={seq} dropped after {attempts} attempts")
            }
            ObsEvent::Deferred { response } => {
                if *response {
                    write!(f, "response dropped, transmitter busy")
                } else {
                    write!(f, "backoff while on air")
                }
            }
            ObsEvent::BackoffAssigned {
                src,
                assigned_slots,
                observed_slots,
                ..
            } => write!(
                f,
                "n{src}: assigned {assigned_slots:.1} slots, observed {observed_slots:.1}"
            ),
            ObsEvent::PenaltyAdded {
                src,
                penalty_slots,
                assigned_slots,
                observed_slots,
                ..
            } => write!(
                f,
                "n{src}: penalty {penalty_slots:.1} slots (assigned {assigned_slots:.1}, observed {observed_slots:.1})"
            ),
            ObsEvent::DiagnosisFlagged { src, window_sum, .. } => {
                write!(f, "n{src}: flagged misbehaving (window sum {window_sum:.1})")
            }
            ObsEvent::Collision {
                victim_tx,
                culprit_tx,
            } => match culprit_tx {
                Some(culprit) => write!(f, "tx#{victim_tx} garbled by tx#{culprit}"),
                None => write!(f, "tx#{victim_tx} garbled by own tx"),
            },
            ObsEvent::Decode { tx, clean } => {
                let outcome = if *clean { "Decoded" } else { "Garbled" };
                write!(f, "tx#{tx} {outcome}")
            }
            ObsEvent::Note { detail, .. } => f.write_str(detail),
            ObsEvent::FaultFrameLost { listener, tx } => {
                write!(f, "fault: tx#{tx} lost in burst noise at n{listener}")
            }
            ObsEvent::FaultCorruptedBackoff {
                listener,
                original_slots,
                corrupted_slots,
            } => write!(
                f,
                "fault: assigned backoff to n{listener} corrupted {original_slots} -> {corrupted_slots} slots"
            ),
            ObsEvent::FaultCorruptedAttempt {
                listener,
                original,
                corrupted,
            } => write!(
                f,
                "fault: attempt field to n{listener} corrupted {original} -> {corrupted}"
            ),
            ObsEvent::FaultNodeDown { cold } => {
                let kind = if *cold { "cold" } else { "warm" };
                write!(f, "fault: node crashed ({kind} diagnosis state)")
            }
            ObsEvent::FaultNodeUp { downtime_us } => {
                write!(f, "fault: node restarted after {downtime_us}us down")
            }
            ObsEvent::LiveShedDropped { shard, station } => {
                write!(f, "live: shard {shard} shed oldest observation of n{station}")
            }
            ObsEvent::LiveDegraded {
                shard,
                sample_every,
            } => write!(
                f,
                "live: shard {shard} degraded to sampling 1-in-{sample_every}"
            ),
            ObsEvent::LiveQuarantined { source, record } => {
                write!(f, "live: source {source} record #{record} quarantined")
            }
            ObsEvent::LiveSourceReopened {
                source,
                attempt,
                backoff_ms,
            } => write!(
                f,
                "live: source {source} reopened (attempt {attempt}, after {backoff_ms}ms)"
            ),
            ObsEvent::LiveCheckpointWritten { consumed, stations } => write!(
                f,
                "live: checkpoint committed at record {consumed} ({stations} stations)"
            ),
            ObsEvent::LiveShardQuarantined { shard, stalled_ms } => {
                write!(f, "live: shard {shard} quarantined after {stalled_ms}ms stall")
            }
        }
    }
}

/// A timestamped, node-attributed event as stored by the sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Virtual time in microseconds.
    pub time_us: u64,
    /// Dense node index, or [`NO_NODE`].
    pub node: u32,
    /// The event payload.
    pub event: ObsEvent,
}

#[cfg(test)]
mod tests {
    use super::{exchange_id, exchange_seq, exchange_src, Category, ObsEvent};

    #[test]
    fn category_bits_are_distinct() {
        let mut mask = 0u32;
        for cat in Category::ALL {
            assert_eq!(mask & cat.bit(), 0, "{cat:?} bit collides");
            mask |= cat.bit();
        }
        assert_eq!(mask.count_ones() as usize, Category::ALL.len());
    }

    #[test]
    fn category_names_match_legacy_trace_strings() {
        assert_eq!(Category::MacTx.name(), "mac.tx");
        assert_eq!(Category::MacBackoff.name(), "mac.backoff");
        assert_eq!(Category::PhyCollision.name(), "phy.collision");
    }

    #[test]
    fn category_names_are_unique_and_round_trip() {
        for cat in Category::ALL {
            assert_eq!(
                Category::from_name(cat.name()),
                Some(cat),
                "{cat:?} must round-trip through its name"
            );
        }
        assert_eq!(Category::from_name("no.such.category"), None);
    }

    #[test]
    fn tx_event_display_names_the_frame_kind() {
        // tests/protocol_invariants.rs classifies mac.tx details by the
        // first of Rts/Cts/Data they contain, else Ack; each display
        // must therefore name exactly its own kind.
        let rts = ObsEvent::RtsTx {
            dst: 2,
            seq: 0,
            attempt: 1,
            xid: 0,
        }
        .to_string();
        assert!(rts.contains("Rts") && !rts.contains("Cts") && !rts.contains("Data"));
        let cts = ObsEvent::CtsTx { dst: 1, xid: 0 }.to_string();
        assert!(cts.contains("Cts") && !cts.contains("Rts") && !cts.contains("Data"));
        let data = ObsEvent::DataTx {
            dst: 2,
            seq: 3,
            attempt: 1,
            xid: 0,
        }
        .to_string();
        assert!(data.contains("Data") && !data.contains("Rts") && !data.contains("Cts"));
        let ack = ObsEvent::AckTx { dst: 1, xid: 0 }.to_string();
        assert!(!ack.contains("Rts") && !ack.contains("Cts") && !ack.contains("Data"));
    }

    #[test]
    fn every_event_maps_to_a_category_and_kind() {
        let events = [
            ObsEvent::RtsTx {
                dst: 0,
                seq: 0,
                attempt: 1,
                xid: exchange_id(3, 0),
            },
            ObsEvent::CtsRx {
                src: 0,
                seq: 0,
                xid: 0,
            },
            ObsEvent::BackoffDrawn { dst: 0, slots: 7 },
            ObsEvent::Retry {
                ack: true,
                attempt: 2,
                slots: 15,
            },
            ObsEvent::PenaltyAdded {
                src: 1,
                penalty_slots: 4.0,
                assigned_slots: 10.0,
                observed_slots: 2.0,
                xid: 0,
            },
            ObsEvent::Note {
                category: "x".into(),
                detail: "y".into(),
            },
            ObsEvent::FaultFrameLost { listener: 2, tx: 9 },
            ObsEvent::FaultNodeDown { cold: true },
        ];
        for e in &events {
            assert!(!e.kind().is_empty());
            assert!(!e.category().name().is_empty());
        }
        assert_eq!(
            ObsEvent::PenaltyAdded {
                src: 1,
                penalty_slots: 4.0,
                assigned_slots: 10.0,
                observed_slots: 2.0,
                xid: 0,
            }
            .category(),
            Category::Monitor
        );
        assert_eq!(
            ObsEvent::FaultNodeUp { downtime_us: 500 }.category(),
            Category::Fault
        );
        assert_eq!(Category::Fault.name(), "fault");
    }

    #[test]
    fn exchange_id_round_trips_src_and_seq() {
        let xid = exchange_id(7, 123_456);
        assert_eq!(exchange_src(xid), 7);
        assert_eq!(exchange_seq(xid), 123_456);
        // Distinct (src, seq) pairs in range never collide.
        assert_ne!(exchange_id(1, 0), exchange_id(0, 1));
        assert_ne!(exchange_id(2, 9), exchange_id(2, 10));
        // The xid accessor surfaces the id only on causal variants.
        let e = ObsEvent::RtsTx {
            dst: 0,
            seq: 5,
            attempt: 1,
            xid: exchange_id(3, 5),
        };
        assert_eq!(e.xid(), Some(exchange_id(3, 5)));
        assert_eq!(ObsEvent::BackoffDrawn { dst: 0, slots: 1 }.xid(), None);
    }
}
