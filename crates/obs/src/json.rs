//! Minimal hand-rolled JSON writer.
//!
//! The offline build's `serde` shim expands derives to nothing, so the
//! exporters serialise by hand. Only what the JSONL/report schema needs
//! is implemented: objects with string/integer/float/bool/raw fields,
//! and correct string escaping.

use std::fmt::Write as _;

/// Incremental builder for a single-line JSON object.
///
/// ```
/// use airguard_obs::JsonObject;
///
/// let mut obj = JsonObject::new();
/// obj.str("name", "run \"a\"").u64("seed", 7).bool("ok", true);
/// assert_eq!(obj.finish(), r#"{"name":"run \"a\"","seed":7,"ok":true}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
        self
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(value, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field. Non-finite values become `null` (JSON has
    /// no NaN/Infinity). Rust's shortest-round-trip formatting is
    /// deterministic, so identical inputs serialise identically.
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialised JSON value verbatim (nested object/array).
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serialises a `u64` slice as a JSON array.
#[must_use]
pub fn u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Appends `s` to `out` with JSON string escaping.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{u64_array, JsonObject};

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        let mut obj = JsonObject::new();
        obj.str("k", "a\"b\\c\nd\u{1}");
        assert_eq!(obj.finish(), "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut obj = JsonObject::new();
        obj.f64("x", f64::NAN).f64("y", 1.5);
        assert_eq!(obj.finish(), r#"{"x":null,"y":1.5}"#);
    }

    #[test]
    fn arrays_and_raw_nesting() {
        let mut obj = JsonObject::new();
        obj.raw("counts", &u64_array(&[1, 2, 3]));
        assert_eq!(obj.finish(), r#"{"counts":[1,2,3]}"#);
        assert_eq!(u64_array(&[]), "[]");
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
