//! Typed telemetry for the airguard stack.
//!
//! The simulator's original instrumentation was a stringly-typed trace
//! bus: every call site formatted an ad-hoc `String` and pushed it
//! through a mutex, even when tracing was off. This crate replaces that
//! with three first-class pieces:
//!
//! * **Typed events** ([`ObsEvent`], [`Record`], [`Category`]) — MAC and
//!   PHY transitions carry structured fields (`assigned_slots`,
//!   `observed_slots`, sequence numbers, …) instead of prose, so they
//!   can be aggregated, filtered, and exported without parsing.
//! * **A lock-free fast path** ([`EventSink`]) — emission checks a
//!   relaxed atomic category bitmask before any allocation or lock;
//!   when a category is disabled the cost is one atomic load. An
//!   optional ring-buffer capacity bounds memory on long runs.
//! * **A metrics registry** ([`Registry`], [`Counter`], [`Histogram`])
//!   — named monotonic counters and fixed-bucket histograms,
//!   snapshotable as deterministic `BTreeMap`s and exportable as JSON
//!   via [`RunSummary`].
//!
//! The crate is a dependency leaf: it speaks raw scalars (`time_us`,
//! `node: u32`) so every layer of the stack — including `airguard-sim`
//! itself — can depend on it without cycles.
//!
//! On top of the flat stream sit the causal layers added for the
//! detection-latency work:
//!
//! * **Exchange ids** ([`exchange_id`]) — every handshake leg and
//!   monitor verdict carries a packed `(src, seq)` id, so the stream
//!   folds back into per-exchange/per-station spans ([`SpanSet`]) and
//!   onset→penalty→diagnosis latencies fall out in virtual time.
//! * **Phase profiling** ([`PhaseProfiler`], [`Phase`]) — scoped wall
//!   timers for the hot loop with the same atomic-mask zero-cost
//!   disabled path as [`EventSink`].
//! * **Timeline export** ([`records_to_chrome_trace`]) — the
//!   virtual-time stream as Chrome trace-event JSON for Perfetto.
//!
//! # Determinism
//!
//! Reports and JSONL export use virtual time only and `BTreeMap`
//! ordering throughout; two runs with the same seed produce
//! byte-identical output. See DESIGN.md §9.

#![forbid(unsafe_code)]

mod event;
mod json;
mod perfetto;
mod profile;
mod progress;
mod registry;
mod report;
mod sink;
mod span;

pub use event::{exchange_id, exchange_seq, exchange_src, Category, ObsEvent, Record, NO_NODE};
pub use json::{escape_into, u64_array, JsonObject};
pub use perfetto::records_to_chrome_trace;
pub use profile::{Phase, PhaseGuard, PhaseProfiler};
pub use progress::{Progress, ProgressSnapshot};
pub use registry::{Counter, Histogram, HistogramSnapshot, Registry, RegistrySnapshot};
pub use report::{aggregate_summaries, fnv1a_hex, record_to_json, records_to_jsonl, RunSummary};
pub use sink::EventSink;
pub use span::{
    detector_latency_hists, ExchangeSpan, SpanSet, StationSpan, DETECTION_LATENCY_BOUNDS_US,
    DETECTION_OBSERVE_MASK, DIAGNOSIS_LATENCY_HIST, PENALTY_LATENCY_HIST,
};
