//! Typed telemetry for the airguard stack.
//!
//! The simulator's original instrumentation was a stringly-typed trace
//! bus: every call site formatted an ad-hoc `String` and pushed it
//! through a mutex, even when tracing was off. This crate replaces that
//! with three first-class pieces:
//!
//! * **Typed events** ([`ObsEvent`], [`Record`], [`Category`]) — MAC and
//!   PHY transitions carry structured fields (`assigned_slots`,
//!   `observed_slots`, sequence numbers, …) instead of prose, so they
//!   can be aggregated, filtered, and exported without parsing.
//! * **A lock-free fast path** ([`EventSink`]) — emission checks a
//!   relaxed atomic category bitmask before any allocation or lock;
//!   when a category is disabled the cost is one atomic load. An
//!   optional ring-buffer capacity bounds memory on long runs.
//! * **A metrics registry** ([`Registry`], [`Counter`], [`Histogram`])
//!   — named monotonic counters and fixed-bucket histograms,
//!   snapshotable as deterministic `BTreeMap`s and exportable as JSON
//!   via [`RunSummary`].
//!
//! The crate is a dependency leaf: it speaks raw scalars (`time_us`,
//! `node: u32`) so every layer of the stack — including `airguard-sim`
//! itself — can depend on it without cycles.
//!
//! # Determinism
//!
//! Reports and JSONL export use virtual time only and `BTreeMap`
//! ordering throughout; two runs with the same seed produce
//! byte-identical output. See DESIGN.md §9.

#![forbid(unsafe_code)]

mod event;
mod json;
mod progress;
mod registry;
mod report;
mod sink;

pub use event::{Category, ObsEvent, Record, NO_NODE};
pub use json::{escape_into, u64_array, JsonObject};
pub use progress::{Progress, ProgressSnapshot};
pub use registry::{Counter, Histogram, HistogramSnapshot, Registry, RegistrySnapshot};
pub use report::{aggregate_summaries, fnv1a_hex, record_to_json, records_to_jsonl, RunSummary};
pub use sink::EventSink;
