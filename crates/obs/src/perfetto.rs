//! Chrome trace-event (Perfetto-loadable) export of the virtual-time
//! timeline.
//!
//! [`records_to_chrome_trace`] renders a [`Record`] stream as the JSON
//! object format (`{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>: one complete
//! (`"ph":"X"`) slice per reconstructed exchange span and one instant
//! (`"ph":"i"`) event per record. Virtual microseconds map directly
//! onto the format's `ts` microsecond field, so the UI shows the
//! simulated timeline, not wall time — output is deterministic and
//! byte-identical across reruns (DESIGN.md §9).
//!
//! Track layout: `pid` 0 holds one thread (`tid`) per station, so each
//! station's exchanges and events line up on its own row.

use crate::event::{exchange_seq, Record, NO_NODE};
use crate::json::JsonObject;
use crate::span::SpanSet;

/// `tid` used for records not attributable to a station.
const SIM_TID: u64 = 0xFFFF_FFFF;

/// Renders records (and the exchange spans reconstructed from them) as
/// a Chrome trace-event JSON object. The output always contains the
/// `traceEvents` array, even when empty.
#[must_use]
pub fn records_to_chrome_trace(records: &[Record]) -> String {
    let spans = SpanSet::from_records(records);
    let mut events: Vec<String> = Vec::with_capacity(records.len() + spans.exchanges.len());
    for span in spans.exchanges.values() {
        let mut args = JsonObject::new();
        args.u64("xid", span.xid)
            .u64("seq", exchange_seq(span.xid))
            .u64("penalties", span.penalties)
            .bool("complete", span.complete())
            .bool("flagged", span.flagged);
        let mut obj = JsonObject::new();
        obj.str("name", &format!("exchange seq={}", exchange_seq(span.xid)))
            .str("cat", "exchange")
            .str("ph", "X")
            .u64("ts", span.start_us)
            .u64("dur", span.duration_us().max(1))
            .u64("pid", 0)
            .u64("tid", u64::from(span.src()))
            .raw("args", &args.finish());
        events.push(obj.finish());
    }
    for record in records {
        let tid = if record.node == NO_NODE {
            SIM_TID
        } else {
            u64::from(record.node)
        };
        let mut args = JsonObject::new();
        args.str("detail", &record.event.to_string());
        if let Some(xid) = record.event.xid() {
            args.u64("xid", xid);
        }
        let mut obj = JsonObject::new();
        obj.str("name", record.event.kind())
            .str("cat", record.event.category().name())
            .str("ph", "i")
            .str("s", "t")
            .u64("ts", record.time_us)
            .u64("pid", 0)
            .u64("tid", tid)
            .raw("args", &args.finish());
        events.push(obj.finish());
    }
    let mut out = String::from("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(event);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::records_to_chrome_trace;
    use crate::event::{exchange_id, ObsEvent, Record, NO_NODE};

    fn sample_records() -> Vec<Record> {
        let xid = exchange_id(1, 2);
        vec![
            Record {
                time_us: 10,
                node: 1,
                event: ObsEvent::RtsTx {
                    dst: 0,
                    seq: 2,
                    attempt: 1,
                    xid,
                },
            },
            Record {
                time_us: 40,
                node: 0,
                event: ObsEvent::CtsTx { dst: 1, xid },
            },
            Record {
                time_us: 99,
                node: NO_NODE,
                event: ObsEvent::Note {
                    category: "sim".into(),
                    detail: "horizon".into(),
                },
            },
        ]
    }

    #[test]
    fn trace_contains_exchange_slices_and_instant_events() {
        let json = records_to_chrome_trace(&sample_records());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"name\":\"exchange seq=2\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"rts_tx\""));
        assert!(json.contains("\"ph\":\"i\""));
        // The exchange slice sits on the originating station's track.
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn empty_input_still_produces_a_valid_envelope() {
        assert_eq!(
            records_to_chrome_trace(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn output_is_deterministic() {
        let records = sample_records();
        assert_eq!(
            records_to_chrome_trace(&records),
            records_to_chrome_trace(&records)
        );
    }
}
