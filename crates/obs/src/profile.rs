//! Scoped phase timers for the simulation hot path.
//!
//! A [`PhaseProfiler`] accumulates wall-clock nanoseconds per
//! [`Phase`] behind the same atomic-mask discipline as
//! [`crate::EventSink`]: [`PhaseProfiler::scope`] loads one relaxed
//! atomic and, when the phase's bit is clear, returns an inert guard —
//! no clock read, no stores, nothing on drop. The hot loop can
//! therefore keep its guards in place permanently and pay only one
//! load per phase per event when profiling is off (BENCH_hotpath.json
//! gates the budget at ≤ 3%).
//!
//! Wall-clock time never enters any deterministic export: profiler
//! output goes to stderr reports and diagnostics only (DESIGN.md §9).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A named section of the per-event simulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Popping the next event off the slab scheduler.
    SchedulerPop = 0,
    /// Sampling the medium and scheduling listener receptions.
    MediumPropagation = 1,
    /// Driving one MAC effect-machine step.
    MacStep = 2,
    /// Receiver-side monitor classification and policy observation.
    MonitorStep = 3,
    /// Building the shard plan: tile index, union-find, component
    /// sub-topology construction.
    ShardBuild = 4,
    /// Merging per-component reports back into one run report.
    ShardMerge = 5,
}

impl Phase {
    /// All phases, in bit order.
    pub const ALL: [Phase; 6] = [
        Phase::SchedulerPop,
        Phase::MediumPropagation,
        Phase::MacStep,
        Phase::MonitorStep,
        Phase::ShardBuild,
        Phase::ShardMerge,
    ];

    /// This phase's bit in the profiler enable mask.
    #[must_use]
    pub const fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Stable snake_case name (used in reports and CI greps).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::SchedulerPop => "scheduler_pop",
            Phase::MediumPropagation => "medium_propagation",
            Phase::MacStep => "mac_step",
            Phase::MonitorStep => "monitor_step",
            Phase::ShardBuild => "shard_build",
            Phase::ShardMerge => "shard_merge",
        }
    }
}

/// Mask with every phase bit set.
const ALL_ON: u32 = {
    let mut mask = 0u32;
    let mut i = 0;
    while i < Phase::ALL.len() {
        mask |= Phase::ALL[i].bit();
        i += 1;
    }
    mask
};

#[derive(Debug)]
struct ProfilerInner {
    /// Per-phase enable bits; zero means fully disabled.
    mask: AtomicU32,
    /// Accumulated wall nanoseconds per phase.
    nanos: [AtomicU64; 6],
    /// Completed scopes per phase.
    calls: [AtomicU64; 6],
}

/// Shared, thread-safe accumulator of per-phase wall time.
///
/// Clones share the same accumulators and enable mask, mirroring
/// [`crate::EventSink`]'s sharing model.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    inner: Arc<ProfilerInner>,
}

impl PhaseProfiler {
    /// A profiler with every phase disabled (scopes are no-ops).
    #[must_use]
    pub fn new() -> Self {
        Self::with_mask(0)
    }

    /// A profiler with every phase enabled.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_mask(ALL_ON)
    }

    /// A profiler with exactly the given phase bits enabled.
    #[must_use]
    pub fn with_mask(mask: u32) -> Self {
        PhaseProfiler {
            inner: Arc::new(ProfilerInner {
                mask: AtomicU32::new(mask),
                nanos: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
                calls: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
            }),
        }
    }

    /// True when at least one phase is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.mask.load(Ordering::Relaxed) != 0
    }

    /// Enables (`true`) or disables (`false`) every phase.
    pub fn set_enabled(&self, on: bool) {
        self.inner
            .mask
            .store(if on { ALL_ON } else { 0 }, Ordering::Relaxed);
    }

    /// Starts timing `phase`; the returned guard adds the elapsed wall
    /// time on drop. When the phase is disabled this is one relaxed
    /// atomic load and the guard is inert.
    #[must_use]
    pub fn scope(&self, phase: Phase) -> PhaseGuard<'_> {
        let start = if self.inner.mask.load(Ordering::Relaxed) & phase.bit() == 0 {
            None
        } else {
            Some(Instant::now())
        };
        PhaseGuard {
            profiler: self,
            phase,
            start,
        }
    }

    /// Accumulated `(wall nanoseconds, completed scopes)` for `phase`.
    #[must_use]
    pub fn totals(&self, phase: Phase) -> (u64, u64) {
        let i = phase as usize;
        (
            self.inner.nanos[i].load(Ordering::Relaxed),
            self.inner.calls[i].load(Ordering::Relaxed),
        )
    }

    /// Resets every accumulator; the enable mask is unchanged.
    pub fn clear(&self) {
        for i in 0..Phase::ALL.len() {
            self.inner.nanos[i].store(0, Ordering::Relaxed);
            self.inner.calls[i].store(0, Ordering::Relaxed);
        }
    }

    /// Human-readable multi-line report, one line per phase:
    /// `profile scheduler_pop: 12.345ms over 678 calls`.
    ///
    /// Diagnostic output only — contains wall time, so it must never
    /// be written into a deterministic export.
    #[must_use]
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for phase in Phase::ALL {
            let (nanos, calls) = self.totals(phase);
            let _ = writeln!(
                out,
                "profile {}: {:.3}ms over {} calls",
                phase.name(),
                nanos as f64 / 1e6,
                calls
            );
        }
        out
    }
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler::new()
    }
}

/// Guard returned by [`PhaseProfiler::scope`]; accumulates on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    profiler: &'a PhaseProfiler,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let i = self.phase as usize;
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.profiler.inner.nanos[i].fetch_add(nanos, Ordering::Relaxed);
            self.profiler.inner.calls[i].fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Phase, PhaseProfiler, ALL_ON};

    #[test]
    fn phase_bits_are_distinct() {
        let mut mask = 0u32;
        for phase in Phase::ALL {
            assert_eq!(mask & phase.bit(), 0, "{phase:?} bit collides");
            mask |= phase.bit();
        }
        assert_eq!(mask, ALL_ON);
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let profiler = PhaseProfiler::new();
        for _ in 0..1000 {
            let _guard = profiler.scope(Phase::MacStep);
        }
        assert_eq!(profiler.totals(Phase::MacStep), (0, 0));
        assert!(!profiler.is_enabled());
    }

    #[test]
    fn enabled_scope_accumulates_time_and_calls() {
        let profiler = PhaseProfiler::enabled();
        for _ in 0..10 {
            let _guard = profiler.scope(Phase::SchedulerPop);
        }
        let (_nanos, calls) = profiler.totals(Phase::SchedulerPop);
        assert_eq!(calls, 10);
        assert_eq!(profiler.totals(Phase::MonitorStep).1, 0);
    }

    #[test]
    fn per_phase_mask_gates_individually() {
        let profiler = PhaseProfiler::with_mask(Phase::MacStep.bit());
        {
            let _a = profiler.scope(Phase::MacStep);
            let _b = profiler.scope(Phase::SchedulerPop);
        }
        assert_eq!(profiler.totals(Phase::MacStep).1, 1);
        assert_eq!(profiler.totals(Phase::SchedulerPop).1, 0);
    }

    #[test]
    fn clones_share_accumulators_and_clear_keeps_mask() {
        let profiler = PhaseProfiler::new();
        let clone = profiler.clone();
        clone.set_enabled(true);
        {
            let _guard = profiler.scope(Phase::MonitorStep);
        }
        assert_eq!(clone.totals(Phase::MonitorStep).1, 1);
        clone.clear();
        assert_eq!(profiler.totals(Phase::MonitorStep), (0, 0));
        assert!(profiler.is_enabled());
    }

    #[test]
    fn report_names_every_phase() {
        let report = PhaseProfiler::enabled().report();
        for phase in Phase::ALL {
            assert!(report.contains(phase.name()), "{} missing", phase.name());
        }
        assert_eq!(report.lines().count(), Phase::ALL.len());
    }
}
