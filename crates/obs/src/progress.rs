//! Engine progress counters.
//!
//! The experiment engine accounts for every grid cell exactly once:
//! `simulated + cached + failed` converges to `total` as the run
//! drains. All counters are lock-free relaxed atomics — workers on the
//! hot path pay one `fetch_add` per *cell* (not per event), and readers
//! take a point-in-time [`ProgressSnapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free cell accounting shared between engine workers.
#[derive(Debug, Default)]
pub struct Progress {
    total: AtomicU64,
    simulated: AtomicU64,
    cached: AtomicU64,
    failed: AtomicU64,
}

impl Progress {
    /// Accounting for `total` scheduled cells.
    #[must_use]
    pub fn new(total: u64) -> Self {
        Progress {
            total: AtomicU64::new(total),
            ..Progress::default()
        }
    }

    /// Records cells completed by simulation.
    pub fn add_simulated(&self, n: u64) {
        self.simulated.fetch_add(n, Ordering::Relaxed);
    }

    /// Records cells satisfied from the result cache.
    pub fn add_cached(&self, n: u64) {
        self.cached.fetch_add(n, Ordering::Relaxed);
    }

    /// Records cells whose run failed.
    pub fn add_failed(&self, n: u64) {
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            total: self.total.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of [`Progress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Cells scheduled.
    pub total: u64,
    /// Cells completed by simulation.
    pub simulated: u64,
    /// Cells satisfied from the cache.
    pub cached: u64,
    /// Cells whose run failed.
    pub failed: u64,
}

impl ProgressSnapshot {
    /// Cells resolved one way or another.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.simulated + self.cached + self.failed
    }
}

impl std::fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells: {} simulated, {} cached, {} failed",
            self.total, self.simulated, self.cached, self.failed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let p = Progress::new(10);
        p.add_simulated(3);
        p.add_cached(2);
        p.add_failed(1);
        p.add_simulated(4);
        let s = p.snapshot();
        assert_eq!(s.total, 10);
        assert_eq!(s.simulated, 7);
        assert_eq!(s.cached, 2);
        assert_eq!(s.failed, 1);
        assert_eq!(s.done(), 10);
        assert_eq!(s.to_string(), "10 cells: 7 simulated, 2 cached, 1 failed");
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let p = Progress::new(64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        p.add_simulated(1);
                    }
                });
            }
        });
        assert_eq!(p.snapshot().simulated, 64);
    }
}
