//! Named counters and fixed-bucket histograms.
//!
//! A [`Registry`] hands out cheap, cloneable handles: [`Counter`] is an
//! `Arc<AtomicU64>`, so the hot path is a single relaxed fetch-add with
//! no name lookup and no lock. The registry itself is only locked when
//! a handle is created or a snapshot taken.
//!
//! Naming convention (see DESIGN.md §9): dotted lowercase paths,
//! `<subsystem>.<quantity>` — e.g. `sim.events_dispatched`,
//! `mac.retries`, `obs.backoff_deviation_slots`. Snapshots are
//! `BTreeMap`-ordered so reports are deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Handle to a named monotonic counter.
///
/// ```
/// use airguard_obs::Registry;
///
/// let reg = Registry::new();
/// let retries = reg.counter("mac.retries");
/// retries.add(3);
/// retries.inc();
/// assert_eq!(reg.snapshot().counters["mac.retries"], 4);
/// ```
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    /// Ascending inclusive upper bounds; values above the last bound
    /// land in the overflow bucket.
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// Handle to a named fixed-bucket histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistInner {
                bounds: bounds.to_vec(),
                counts,
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample. Callers with fractional quantities (e.g.
    /// deviation in slots) round before recording.
    pub fn record(&self, value: u64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.total.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram's state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self
                .inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            total: self.inner.total.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a histogram: per-bucket counts (the last entry is
/// the overflow bucket), sample count, and sample sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub total: u64,
    pub sum: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// Registry of named metrics. Clones share the same underlying map.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it at zero on first
    /// use. Handles are cheap to clone and lock-free to update.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_owned())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the histogram named `name`, creating it with `bounds`
    /// on first use. An existing histogram keeps its original bounds.
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// Deterministic (`BTreeMap`-ordered) copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Folds `other` into `self`: counters sum by name, histograms sum
    /// bucket-wise. Because both maps are name-ordered and addition is
    /// commutative, merging per-shard snapshots in any order yields the
    /// same result as recording every sample into one registry.
    ///
    /// # Panics
    ///
    /// Panics if two histograms share a name but disagree on bounds —
    /// that is a wiring bug, not a data condition.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            match self.histograms.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(hist.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let mine = slot.get_mut();
                    assert_eq!(
                        mine.bounds, hist.bounds,
                        "histogram {name:?} merged with mismatched bounds"
                    );
                    for (a, b) in mine.counts.iter_mut().zip(&hist.counts) {
                        *a += b;
                    }
                    mine.total += hist.total;
                    mine.sum += hist.sum;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Registry;

    #[test]
    fn counter_handles_share_state_by_name() {
        let reg = Registry::new();
        let a = reg.counter("mac.retries");
        let b = reg.counter("mac.retries");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counters["mac.retries"], 3);
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let reg = Registry::new();
        let h = reg.histogram("obs.backoff_deviation_slots", &[0, 2, 8]);
        for v in [0, 1, 2, 3, 8, 9, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 2, 2]); // <=0, <=2, <=8, overflow
        assert_eq!(snap.total, 7);
        assert_eq!(snap.sum, 1023);
    }

    #[test]
    fn histogram_keeps_original_bounds() {
        let reg = Registry::new();
        let _ = reg.histogram("h", &[1, 2]);
        let again = reg.histogram("h", &[99]);
        assert_eq!(again.snapshot().bounds, vec![1, 2]);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let reg = Registry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        let names: Vec<_> = reg.snapshot().counters.keys().cloned().collect();
        assert_eq!(names, ["a.first", "z.last"]);
    }

    #[test]
    fn values_exactly_on_a_bucket_edge_land_in_that_bucket() {
        // The bounds are *inclusive* upper edges: a sample equal to a
        // bound belongs to that bound's bucket, never the next one.
        // Recording each edge value exactly once must therefore produce
        // one count per bounded bucket and an empty overflow bucket.
        let reg = Registry::new();
        let h = reg.histogram("edges", &[1_000, 5_000, 10_000]);
        for edge in [1_000, 5_000, 10_000] {
            h.record(edge);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 1, 1, 0]);
        // One past an edge spills into the next bucket; one past the
        // last edge is overflow.
        h.record(1_001);
        h.record(10_001);
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 1, 1]);
        assert_eq!(snap.total, 5);
        // Zero with a zero bound: still the first bucket.
        let z = reg.histogram("zero_edge", &[0, 10]);
        z.record(0);
        assert_eq!(z.snapshot().counts, vec![1, 0, 0]);
    }

    #[test]
    fn snapshots_are_byte_identical_across_worker_counts() {
        // The engine's contract: the same samples produce the same
        // snapshot (and so the same report bytes) no matter how many
        // threads recorded them or in what order. Record a fixed
        // multiset of samples under 1, 2, and 4 workers and compare the
        // rendered summaries byte for byte.
        let samples: Vec<u64> = (0..1_000).map(|i| (i * 37) % 4_096).collect();
        let render = |workers: usize| -> String {
            let reg = Registry::new();
            let hist = reg.histogram("obs.x", &[64, 512, 2_048]);
            let counter = reg.counter("obs.n");
            std::thread::scope(|scope| {
                for chunk in samples.chunks(samples.len() / workers) {
                    let hist = hist.clone();
                    let counter = counter.clone();
                    scope.spawn(move || {
                        for &v in chunk {
                            hist.record(v);
                            counter.inc();
                        }
                    });
                }
            });
            let summary =
                crate::report::RunSummary::new("w", 1, "d", 0).with_metrics(reg.snapshot());
            summary.to_json()
        };
        let one = render(1);
        assert_eq!(one, render(2));
        assert_eq!(one, render(4));
    }
}
