//! Exporters: JSONL event streams and per-run summary reports.
//!
//! Determinism contract (DESIGN.md §9): exports contain virtual time
//! only — never wall-clock time — and all maps serialise in `BTreeMap`
//! key order, so two runs with the same seed produce byte-identical
//! output.

use std::collections::BTreeMap;

use crate::event::{ObsEvent, Record, NO_NODE};
use crate::json::{u64_array, JsonObject};
use crate::registry::{HistogramSnapshot, RegistrySnapshot};

/// FNV-1a 64-bit digest of `bytes`, as a fixed-width hex string.
///
/// Used to fingerprint the run configuration (`Debug` rendering of the
/// config struct) so reports from different configs never compare equal
/// by accident.
#[must_use]
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Deterministic per-run report: configuration digest, seed, virtual
/// elapsed time, and a snapshot of every registered metric.
///
/// `to_json` renders a single line suitable for `.report.jsonl` files;
/// byte-identical across same-seed runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Scenario or binary label, e.g. `"fig4"`.
    pub label: String,
    /// Master seed the run used.
    pub seed: u64,
    /// [`fnv1a_hex`] digest of the run configuration.
    pub config_digest: String,
    /// Virtual time elapsed, microseconds.
    pub elapsed_us: u64,
    /// Wall-clock time spent producing this summary, microseconds.
    ///
    /// Zero when the summary was rehydrated from a result cache rather
    /// than simulated, so cached and simulated cells are
    /// distinguishable programmatically. Deliberately *excluded* from
    /// [`RunSummary::to_json`]: the determinism contract (DESIGN.md §9)
    /// forbids wall-clock time in exports, and report lines must stay
    /// byte-identical across reruns and worker counts.
    pub wall_elapsed_us: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RunSummary {
    /// A summary with no metrics yet.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        config_digest: impl Into<String>,
        elapsed_us: u64,
    ) -> Self {
        RunSummary {
            label: label.into(),
            seed,
            config_digest: config_digest.into(),
            elapsed_us,
            wall_elapsed_us: 0,
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Stamps the wall-clock cost of producing this summary.
    #[must_use]
    pub fn with_wall_elapsed(mut self, wall_elapsed_us: u64) -> Self {
        self.wall_elapsed_us = wall_elapsed_us;
        self
    }

    /// Merges a registry snapshot's metrics into the summary.
    #[must_use]
    pub fn with_metrics(mut self, snapshot: RegistrySnapshot) -> Self {
        self.counters.extend(snapshot.counters);
        self.histograms.extend(snapshot.histograms);
        self
    }

    /// Single-line JSON rendering, deterministic field and key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (name, value) in &self.counters {
            counters.u64(name, *value);
        }
        let mut histograms = JsonObject::new();
        for (name, snap) in &self.histograms {
            let mut h = JsonObject::new();
            h.raw("bounds", &u64_array(&snap.bounds))
                .raw("counts", &u64_array(&snap.counts))
                .u64("total", snap.total)
                .u64("sum", snap.sum);
            histograms.raw(name, &h.finish());
        }
        let mut obj = JsonObject::new();
        obj.str("label", &self.label)
            .u64("seed", self.seed)
            .str("config_digest", &self.config_digest)
            .u64("elapsed_us", self.elapsed_us)
            .raw("counters", &counters.finish())
            .raw("histograms", &histograms.finish());
        obj.finish()
    }
}

/// Pools per-run summaries into one aggregate [`RunSummary`] under
/// `label` (the experiment engine emits one pooled line per grid
/// point).
///
/// Semantics: counters sum per name; histograms with identical bounds
/// sum element-wise, while a name whose bounds disagree across parts is
/// dropped (pooling incompatible geometries would misstate the data);
/// virtual elapsed time sums; `seed` is 0 (an aggregate has no seed);
/// `config_digest` is kept when every part agrees and is `"mixed"`
/// otherwise.
#[must_use]
pub fn aggregate_summaries(label: impl Into<String>, parts: &[RunSummary]) -> RunSummary {
    let mut agg = RunSummary::new(
        label,
        0,
        match parts.first() {
            Some(first) if parts.iter().all(|p| p.config_digest == first.config_digest) => {
                first.config_digest.clone()
            }
            Some(_) => "mixed".to_owned(),
            None => String::new(),
        },
        parts.iter().map(|p| p.elapsed_us).sum(),
    )
    .with_wall_elapsed(parts.iter().map(|p| p.wall_elapsed_us).sum());
    for part in parts {
        for (name, value) in &part.counters {
            *agg.counters.entry(name.clone()).or_insert(0) += value;
        }
    }
    let mut dropped: Vec<String> = Vec::new();
    for part in parts {
        for (name, h) in &part.histograms {
            match agg.histograms.get_mut(name) {
                None => {
                    if !dropped.contains(name) {
                        agg.histograms.insert(name.clone(), h.clone());
                    }
                }
                Some(acc) if acc.bounds == h.bounds => {
                    for (a, c) in acc.counts.iter_mut().zip(&h.counts) {
                        *a += c;
                    }
                    acc.total += h.total;
                    acc.sum += h.sum;
                }
                Some(_) => {
                    agg.histograms.remove(name);
                    dropped.push(name.clone());
                }
            }
        }
    }
    agg
}

/// Serialises one [`Record`] as a single JSONL line.
///
/// Schema: `t_us` (virtual time), `node` (absent for records carrying
/// [`NO_NODE`]), `cat` (category name), `event` (variant name), then
/// the variant's own fields flattened.
#[must_use]
pub fn record_to_json(record: &Record) -> String {
    let mut obj = JsonObject::new();
    obj.u64("t_us", record.time_us);
    if record.node != NO_NODE {
        obj.u64("node", u64::from(record.node));
    }
    obj.str("cat", record.event.category().name())
        .str("event", record.event.kind());
    match &record.event {
        ObsEvent::RtsTx {
            dst,
            seq,
            attempt,
            xid,
        }
        | ObsEvent::DataTx {
            dst,
            seq,
            attempt,
            xid,
        } => {
            obj.u64("dst", u64::from(*dst))
                .u64("seq", *seq)
                .u64("attempt", u64::from(*attempt))
                .u64("xid", *xid);
        }
        ObsEvent::CtsTx { dst, xid } | ObsEvent::AckTx { dst, xid } => {
            obj.u64("dst", u64::from(*dst)).u64("xid", *xid);
        }
        ObsEvent::CtsRx { src, seq, xid } | ObsEvent::AckRx { src, seq, xid } => {
            obj.u64("src", u64::from(*src))
                .u64("seq", *seq)
                .u64("xid", *xid);
        }
        ObsEvent::RtsIgnored { src }
        | ObsEvent::AckSuppressed { src }
        | ObsEvent::ProbeDropped { src } => {
            obj.u64("src", u64::from(*src));
        }
        ObsEvent::BackoffDrawn { dst, slots } => {
            obj.u64("dst", u64::from(*dst))
                .u64("slots", u64::from(*slots));
        }
        ObsEvent::Retry {
            ack,
            attempt,
            slots,
        } => {
            obj.bool("ack", *ack)
                .u64("attempt", u64::from(*attempt))
                .u64("slots", u64::from(*slots));
        }
        ObsEvent::PacketDropped { seq, attempts } => {
            obj.u64("seq", *seq).u64("attempts", u64::from(*attempts));
        }
        ObsEvent::Deferred { response } => {
            obj.bool("response", *response);
        }
        ObsEvent::BackoffAssigned {
            src,
            assigned_slots,
            observed_slots,
            xid,
        } => {
            obj.u64("src", u64::from(*src))
                .f64("assigned_slots", *assigned_slots)
                .f64("observed_slots", *observed_slots)
                .u64("xid", *xid);
        }
        ObsEvent::PenaltyAdded {
            src,
            penalty_slots,
            assigned_slots,
            observed_slots,
            xid,
        } => {
            obj.u64("src", u64::from(*src))
                .f64("penalty_slots", *penalty_slots)
                .f64("assigned_slots", *assigned_slots)
                .f64("observed_slots", *observed_slots)
                .u64("xid", *xid);
        }
        ObsEvent::DiagnosisFlagged {
            src,
            window_sum,
            xid,
        } => {
            obj.u64("src", u64::from(*src))
                .f64("window_sum", *window_sum)
                .u64("xid", *xid);
        }
        ObsEvent::Collision {
            victim_tx,
            culprit_tx,
        } => {
            obj.u64("victim_tx", *victim_tx);
            if let Some(culprit) = culprit_tx {
                obj.u64("culprit_tx", *culprit);
            }
        }
        ObsEvent::Decode { tx, clean } => {
            obj.u64("tx", *tx).bool("clean", *clean);
        }
        ObsEvent::Note { category, detail } => {
            obj.str("note_cat", category).str("detail", detail);
        }
        ObsEvent::FaultFrameLost { listener, tx } => {
            obj.u64("listener", u64::from(*listener)).u64("tx", *tx);
        }
        ObsEvent::FaultCorruptedBackoff {
            listener,
            original_slots,
            corrupted_slots,
        } => {
            obj.u64("listener", u64::from(*listener))
                .u64("original_slots", u64::from(*original_slots))
                .u64("corrupted_slots", u64::from(*corrupted_slots));
        }
        ObsEvent::FaultCorruptedAttempt {
            listener,
            original,
            corrupted,
        } => {
            obj.u64("listener", u64::from(*listener))
                .u64("original", u64::from(*original))
                .u64("corrupted", u64::from(*corrupted));
        }
        ObsEvent::FaultNodeDown { cold } => {
            obj.bool("cold", *cold);
        }
        ObsEvent::FaultNodeUp { downtime_us } => {
            obj.u64("downtime_us", *downtime_us);
        }
        ObsEvent::LiveShedDropped { shard, station } => {
            obj.u64("shard", u64::from(*shard))
                .u64("station", u64::from(*station));
        }
        ObsEvent::LiveDegraded {
            shard,
            sample_every,
        } => {
            obj.u64("shard", u64::from(*shard))
                .u64("sample_every", u64::from(*sample_every));
        }
        ObsEvent::LiveQuarantined { source, record } => {
            obj.u64("source", u64::from(*source)).u64("record", *record);
        }
        ObsEvent::LiveSourceReopened {
            source,
            attempt,
            backoff_ms,
        } => {
            obj.u64("source", u64::from(*source))
                .u64("attempt", u64::from(*attempt))
                .u64("backoff_ms", *backoff_ms);
        }
        ObsEvent::LiveCheckpointWritten { consumed, stations } => {
            obj.u64("consumed", *consumed).u64("stations", *stations);
        }
        ObsEvent::LiveShardQuarantined { shard, stalled_ms } => {
            obj.u64("shard", u64::from(*shard))
                .u64("stalled_ms", *stalled_ms);
        }
    }
    obj.finish()
}

/// Serialises records as JSONL: one JSON object per line, trailing
/// newline included when non-empty.
#[must_use]
pub fn records_to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&record_to_json(record));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{aggregate_summaries, fnv1a_hex, record_to_json, records_to_jsonl, RunSummary};
    use crate::event::{ObsEvent, Record, NO_NODE};
    use crate::registry::Registry;

    #[test]
    fn fnv_digest_is_stable_and_hex() {
        let d = fnv1a_hex(b"airguard");
        assert_eq!(d.len(), 16);
        assert_eq!(d, fnv1a_hex(b"airguard"));
        assert_ne!(d, fnv1a_hex(b"airguarD"));
    }

    #[test]
    fn record_json_flattens_typed_fields() {
        let line = record_to_json(&Record {
            time_us: 120,
            node: 2,
            event: ObsEvent::PenaltyAdded {
                src: 1,
                penalty_slots: 3.5,
                assigned_slots: 10.0,
                observed_slots: 3.0,
                xid: crate::event::exchange_id(1, 9),
            },
        });
        assert_eq!(
            line,
            "{\"t_us\":120,\"node\":2,\"cat\":\"monitor\",\"event\":\"penalty_added\",\
             \"src\":1,\"penalty_slots\":3.5,\"assigned_slots\":10,\"observed_slots\":3,\
             \"xid\":1099511627785}"
        );
    }

    #[test]
    fn no_node_records_omit_the_node_field() {
        let line = record_to_json(&Record {
            time_us: 0,
            node: NO_NODE,
            event: ObsEvent::Note {
                category: "sim".into(),
                detail: "start".into(),
            },
        });
        assert!(!line.contains("\"node\""));
        assert!(line.contains("\"note_cat\":\"sim\""));
    }

    #[test]
    fn jsonl_is_one_line_per_record() {
        let records = vec![
            Record {
                time_us: 1,
                node: 0,
                event: ObsEvent::CtsTx { dst: 1, xid: 7 },
            },
            Record {
                time_us: 2,
                node: 1,
                event: ObsEvent::AckRx {
                    src: 0,
                    seq: 4,
                    xid: 4,
                },
            },
        ];
        let out = records_to_jsonl(&records);
        assert_eq!(out.lines().count(), 2);
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn aggregation_pools_counters_and_histograms() {
        let mut a = RunSummary::new("fig4/pm=50", 1, "d1", 100);
        a.counters.insert("mac.rts_tx".into(), 3);
        a.histograms.insert(
            "h".into(),
            crate::registry::HistogramSnapshot {
                bounds: vec![1, 4],
                counts: vec![1, 0, 2],
                total: 3,
                sum: 9,
            },
        );
        let mut b = RunSummary::new("fig4/pm=50", 2, "d1", 50);
        b.counters.insert("mac.rts_tx".into(), 4);
        b.counters.insert("mac.acks".into(), 7);
        b.histograms.insert(
            "h".into(),
            crate::registry::HistogramSnapshot {
                bounds: vec![1, 4],
                counts: vec![0, 1, 1],
                total: 2,
                sum: 6,
            },
        );
        let agg = aggregate_summaries("fig4/pm=50/pooled", &[a, b]);
        assert_eq!(agg.label, "fig4/pm=50/pooled");
        assert_eq!(agg.seed, 0);
        assert_eq!(agg.config_digest, "d1");
        assert_eq!(agg.elapsed_us, 150);
        assert_eq!(agg.counters["mac.rts_tx"], 7);
        assert_eq!(agg.counters["mac.acks"], 7);
        let h = &agg.histograms["h"];
        assert_eq!(h.counts, vec![1, 1, 3]);
        assert_eq!(h.total, 5);
        assert_eq!(h.sum, 15);
    }

    #[test]
    fn aggregation_drops_mismatched_histograms_and_mixed_digests() {
        let mut a = RunSummary::new("x", 1, "d1", 0);
        a.histograms.insert(
            "h".into(),
            crate::registry::HistogramSnapshot {
                bounds: vec![1],
                counts: vec![1, 1],
                total: 2,
                sum: 2,
            },
        );
        let mut b = RunSummary::new("x", 2, "d2", 0);
        b.histograms.insert(
            "h".into(),
            crate::registry::HistogramSnapshot {
                bounds: vec![2],
                counts: vec![0, 1],
                total: 1,
                sum: 3,
            },
        );
        let agg = aggregate_summaries("x/pooled", &[a.clone(), b]);
        assert_eq!(agg.config_digest, "mixed");
        assert!(
            !agg.histograms.contains_key("h"),
            "mismatched bounds must drop the histogram"
        );
        // Once dropped, a later part with the same name must not
        // resurrect it with partial data.
        let mut c = RunSummary::new("x", 3, "d1", 0);
        c.histograms.insert(
            "h".into(),
            crate::registry::HistogramSnapshot {
                bounds: vec![2],
                counts: vec![0, 1],
                total: 1,
                sum: 3,
            },
        );
        let mut b2 = RunSummary::new("x", 2, "d2", 0);
        b2.histograms.insert(
            "h".into(),
            crate::registry::HistogramSnapshot {
                bounds: vec![2],
                counts: vec![0, 1],
                total: 1,
                sum: 3,
            },
        );
        let agg = aggregate_summaries("x/pooled", &[a, b2, c]);
        assert!(!agg.histograms.contains_key("h"));
        assert!(aggregate_summaries("e", &[]).config_digest.is_empty());
    }

    #[test]
    fn summary_json_is_deterministic_and_ordered() {
        let reg = Registry::new();
        reg.counter("z.second").add(2);
        reg.counter("a.first").add(1);
        reg.histogram("h.dev", &[1, 4]).record(3);
        let summary =
            RunSummary::new("fig4", 7, fnv1a_hex(b"cfg"), 2_000_000).with_metrics(reg.snapshot());
        let json = summary.to_json();
        assert_eq!(json, summary.to_json());
        let a = json.find("a.first").expect("a.first present");
        let z = json.find("z.second").expect("z.second present");
        assert!(a < z, "counters must serialise in name order");
        assert!(json.contains("\"seed\":7"));
        assert!(json.contains("\"elapsed_us\":2000000"));
        assert!(json.contains("\"bounds\":[1,4]"));
    }
}
