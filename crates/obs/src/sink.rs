//! Event sink with a lock-free disabled path.
//!
//! [`EventSink::emit`] loads an atomic category bitmask (`Relaxed`)
//! before doing anything else; when the event's category bit is clear
//! the call returns immediately — no allocation, no lock, one atomic
//! load. Only enabled events pay for the mutex push.
//!
//! An optional ring-buffer capacity bounds memory on long runs: once
//! full, the oldest record is evicted and a drop counter incremented.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::event::{Category, ObsEvent, Record};

/// Mask with every category bit set.
const ALL_ON: u32 = {
    let mut mask = 0u32;
    let mut i = 0;
    while i < Category::ALL.len() {
        mask |= Category::ALL[i].bit();
        i += 1;
    }
    mask
};

#[derive(Debug, Default)]
struct SinkState {
    records: VecDeque<Record>,
    capacity: Option<usize>,
    dropped: u64,
}

#[derive(Debug)]
struct SinkInner {
    /// Per-category enable bits; zero means fully disabled.
    mask: AtomicU32,
    /// Number of times the state mutex was acquired — test
    /// instrumentation backing the "no lock when disabled" guarantee.
    lock_acquisitions: AtomicU64,
    state: Mutex<SinkState>,
}

/// Shared, thread-safe collector of typed telemetry [`Record`]s.
///
/// Clones share the same buffer and enable mask, so a sink can be
/// handed to every node in a simulation and drained once at the end.
///
/// ```
/// use airguard_obs::{EventSink, ObsEvent};
///
/// let sink = EventSink::enabled();
/// sink.emit(10, 1, ObsEvent::RtsTx { dst: 2, seq: 0, attempt: 1, xid: 0 });
/// assert_eq!(sink.len(), 1);
/// assert_eq!(sink.records()[0].time_us, 10);
/// ```
#[derive(Debug, Clone)]
pub struct EventSink {
    inner: Arc<SinkInner>,
}

impl EventSink {
    /// A sink with all categories disabled (emission is a no-op).
    #[must_use]
    pub fn new() -> Self {
        Self::with_mask(0)
    }

    /// A sink with every category enabled.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_mask(ALL_ON)
    }

    /// A sink with exactly the given category bits enabled.
    #[must_use]
    pub fn with_mask(mask: u32) -> Self {
        EventSink {
            inner: Arc::new(SinkInner {
                mask: AtomicU32::new(mask),
                lock_acquisitions: AtomicU64::new(0),
                state: Mutex::new(SinkState::default()),
            }),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, SinkState> {
        self.inner.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.inner.state.lock()
    }

    /// True when at least one category is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.mask.load(Ordering::Relaxed) != 0
    }

    /// True when `cat` specifically is enabled — the same check `emit`
    /// performs, exposed so call sites can skip building expensive
    /// payloads.
    #[must_use]
    pub fn wants(&self, cat: Category) -> bool {
        self.inner.mask.load(Ordering::Relaxed) & cat.bit() != 0
    }

    /// Enables (`true`) or disables (`false`) every category.
    pub fn set_enabled(&self, on: bool) {
        self.inner
            .mask
            .store(if on { ALL_ON } else { 0 }, Ordering::Relaxed);
    }

    /// Replaces the whole enable mask.
    pub fn set_mask(&self, mask: u32) {
        self.inner.mask.store(mask, Ordering::Relaxed);
    }

    /// The current enable mask.
    #[must_use]
    pub fn mask(&self) -> u32 {
        self.inner.mask.load(Ordering::Relaxed)
    }

    /// Bounds the buffer to `capacity` records (ring behaviour: once
    /// full, the oldest record is evicted). `None` removes the bound.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        let mut state = self.lock_state();
        state.capacity = capacity;
        if let Some(cap) = capacity {
            while state.records.len() > cap {
                state.records.pop_front();
                state.dropped += 1;
            }
        }
    }

    /// Records evicted by the ring bound so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock_state().dropped
    }

    /// Records an event at virtual time `time_us` attributed to `node`.
    ///
    /// When the event's category is disabled this returns after a
    /// single relaxed atomic load — no allocation, no lock.
    pub fn emit(&self, time_us: u64, node: u32, event: ObsEvent) {
        if self.inner.mask.load(Ordering::Relaxed) & event.category().bit() == 0 {
            return;
        }
        let mut state = self.lock_state();
        if let Some(cap) = state.capacity {
            if cap == 0 {
                state.dropped += 1;
                return;
            }
            if state.records.len() >= cap {
                state.records.pop_front();
                state.dropped += 1;
            }
        }
        state.records.push_back(Record {
            time_us,
            node,
            event,
        });
    }

    /// Snapshot of every buffered record, in emission order.
    #[must_use]
    pub fn records(&self) -> Vec<Record> {
        self.lock_state().records.iter().cloned().collect()
    }

    /// Number of buffered records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock_state().records.len()
    }

    /// True when no records are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all buffered records; the enable mask is unchanged.
    pub fn clear(&self) {
        let mut state = self.lock_state();
        state.records.clear();
        state.dropped = 0;
    }

    /// How many times the internal state mutex has been acquired.
    ///
    /// Test instrumentation: a disabled `emit` must not move this.
    #[must_use]
    pub fn lock_acquisitions(&self) -> u64 {
        self.inner.lock_acquisitions.load(Ordering::Relaxed)
    }
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink::new()
    }
}

#[cfg(test)]
mod tests {
    use super::{EventSink, ALL_ON};
    use crate::event::{Category, ObsEvent};

    fn probe() -> ObsEvent {
        ObsEvent::RtsTx {
            dst: 1,
            seq: 0,
            attempt: 1,
            xid: 0,
        }
    }

    #[test]
    fn disabled_emit_takes_no_lock() {
        let sink = EventSink::new();
        let before = sink.lock_acquisitions();
        for t in 0..1000 {
            sink.emit(t, 0, probe());
        }
        assert_eq!(sink.lock_acquisitions(), before, "disabled emit locked");
        assert_eq!(sink.mask(), 0);
    }

    #[test]
    fn category_mask_filters_per_category() {
        let sink = EventSink::with_mask(Category::MacTx.bit());
        sink.emit(0, 0, probe()); // MacTx: kept
        sink.emit(
            1,
            0,
            ObsEvent::CtsRx {
                src: 1,
                seq: 0,
                xid: 0,
            },
        ); // MacRx: dropped
        assert_eq!(sink.len(), 1);
        assert!(sink.wants(Category::MacTx));
        assert!(!sink.wants(Category::MacRx));
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let sink = EventSink::enabled();
        sink.set_capacity(Some(3));
        for t in 0..5 {
            sink.emit(t, 0, probe());
        }
        let records = sink.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].time_us, 2, "oldest two evicted");
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn clones_share_buffer_and_mask() {
        let sink = EventSink::new();
        let clone = sink.clone();
        clone.set_enabled(true);
        assert!(sink.is_enabled());
        assert_eq!(sink.mask(), ALL_ON);
        sink.emit(5, 2, probe());
        assert_eq!(clone.len(), 1);
        clone.set_enabled(false);
        sink.emit(6, 2, probe());
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn clear_keeps_mask() {
        let sink = EventSink::enabled();
        sink.emit(0, 0, probe());
        sink.clear();
        assert!(sink.is_empty());
        assert!(sink.is_enabled());
    }
}
