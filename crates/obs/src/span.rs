//! Causal span reconstruction over the typed event stream.
//!
//! The emitters thread an exchange id ([`crate::event::exchange_id`])
//! through every leg of the RTS→CTS→DATA→ACK handshake and through the
//! monitor observations it triggers. This module folds a flat
//! [`Record`] stream back into that causal structure:
//!
//! * [`ExchangeSpan`] — one handshake: which legs were observed and
//!   when (virtual µs), plus the monitor verdicts it drew;
//! * [`StationSpan`] — one station: first channel access, first
//!   penalty, first diagnosis, and the tallies between them.
//!
//! From station spans the detection-latency metrics fall out directly:
//! a misbehaving sender cheats from its first access, so
//! `first_penalty - first_access` is the monitor's reaction time and
//! `first_diagnosis - first_access` the diagnosis time (paper §4: W=5
//! window crossing THRESH). All times are virtual, so the derived
//! histograms obey the determinism contract (DESIGN.md §9).

use std::collections::BTreeMap;

use crate::event::{exchange_src, Category, ObsEvent, Record};
use crate::registry::Registry;

/// The sink category mask detection-latency runs need: the handshake
/// emissions that mark misbehavior onset and the monitor verdicts that
/// end the latency window. The runner folds spans into the registry
/// exactly when a run's sink carries both categories.
pub const DETECTION_OBSERVE_MASK: u32 = Category::MacTx.bit() | Category::Monitor.bit();

/// Histogram bucket upper bounds (virtual µs) for detection-latency
/// metrics: 1 ms to 30 s, roughly logarithmic. Chosen once and shared
/// by every cell so pooled histograms always have identical geometry.
pub const DETECTION_LATENCY_BOUNDS_US: [u64; 10] = [
    1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000, 30_000_000,
];

/// Registry name of the onset→first-`PenaltyAdded` latency histogram.
pub const PENALTY_LATENCY_HIST: &str = "obs.detect.penalty_latency_us";

/// Registry name of the onset→first-`DiagnosisFlagged` latency
/// histogram.
pub const DIAGNOSIS_LATENCY_HIST: &str = "obs.detect.diagnosis_latency_us";

/// One reconstructed RTS→CTS→DATA→ACK handshake.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExchangeSpan {
    /// Packed exchange id (see [`crate::event::exchange_id`]).
    pub xid: u64,
    /// Virtual time of the first event carrying this id.
    pub start_us: u64,
    /// Virtual time of the last event carrying this id.
    pub end_us: u64,
    /// When the sender put the (first) RTS on the air.
    pub rts_us: Option<u64>,
    /// When the receiver answered with a CTS.
    pub cts_us: Option<u64>,
    /// When the DATA frame went on the air.
    pub data_us: Option<u64>,
    /// When the sender decoded the completing ACK.
    pub ack_us: Option<u64>,
    /// Monitor penalties charged against this exchange's access.
    pub penalties: u64,
    /// Whether this exchange's access tripped a diagnosis.
    pub flagged: bool,
}

impl ExchangeSpan {
    /// The station that originated the exchange (packed in the id).
    #[must_use]
    pub fn src(&self) -> u32 {
        exchange_src(self.xid)
    }

    /// Whether every leg of the four-way handshake was observed.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.rts_us.is_some()
            && self.cts_us.is_some()
            && self.data_us.is_some()
            && self.ack_us.is_some()
    }

    /// Virtual duration from first to last observed leg.
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Per-station causal summary across all its exchanges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StationSpan {
    /// When the station first accessed the channel (RTS or Basic DATA).
    ///
    /// For a misbehaving sender this is its misbehavior onset: the
    /// scenario layer configures cheating from t=0, so the first
    /// access is the first cheated backoff.
    pub first_access_us: Option<u64>,
    /// When a monitor first charged this station a penalty.
    pub first_penalty_us: Option<u64>,
    /// When a monitor first flagged this station as misbehaving.
    pub first_diagnosis_us: Option<u64>,
    /// Total penalties charged against the station.
    pub penalties: u64,
    /// Total diagnosis flags raised against the station.
    pub diagnoses: u64,
    /// Distinct exchanges the station originated.
    pub exchanges: u64,
}

impl StationSpan {
    /// Virtual onset→first-penalty latency, when both ends observed.
    #[must_use]
    pub fn penalty_latency_us(&self) -> Option<u64> {
        Some(self.first_penalty_us?.saturating_sub(self.first_access_us?))
    }

    /// Virtual onset→first-diagnosis latency, when both ends observed.
    #[must_use]
    pub fn diagnosis_latency_us(&self) -> Option<u64> {
        Some(
            self.first_diagnosis_us?
                .saturating_sub(self.first_access_us?),
        )
    }
}

/// The reconstructed span structure of one event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSet {
    /// Exchange spans keyed by exchange id (BTreeMap: deterministic
    /// iteration).
    pub exchanges: BTreeMap<u64, ExchangeSpan>,
    /// Station spans keyed by originating station id.
    pub stations: BTreeMap<u32, StationSpan>,
}

impl SpanSet {
    /// Folds a record stream into exchange and station spans.
    ///
    /// Only events carrying an exchange id contribute; the stream may
    /// be category-filtered (e.g. `MacTx | Monitor` is enough for
    /// detection latency).
    #[must_use]
    pub fn from_records(records: &[Record]) -> SpanSet {
        let mut set = SpanSet::default();
        for record in records {
            let Some(xid) = record.event.xid() else {
                continue;
            };
            let t = record.time_us;
            let exchange = set.exchanges.entry(xid).or_insert_with(|| ExchangeSpan {
                xid,
                start_us: t,
                end_us: t,
                ..ExchangeSpan::default()
            });
            exchange.start_us = exchange.start_us.min(t);
            exchange.end_us = exchange.end_us.max(t);
            let src = exchange_src(xid);
            let station = set.stations.entry(src).or_default();
            match &record.event {
                ObsEvent::RtsTx { .. } => {
                    if exchange.rts_us.is_none() {
                        exchange.rts_us = Some(t);
                    }
                    if station.first_access_us.is_none() {
                        station.first_access_us = Some(t);
                    }
                }
                ObsEvent::CtsTx { .. } if exchange.cts_us.is_none() => {
                    exchange.cts_us = Some(t);
                }
                ObsEvent::DataTx { .. } => {
                    if exchange.data_us.is_none() {
                        exchange.data_us = Some(t);
                    }
                    if station.first_access_us.is_none() {
                        station.first_access_us = Some(t);
                    }
                }
                ObsEvent::AckRx { .. } if exchange.ack_us.is_none() => {
                    exchange.ack_us = Some(t);
                }
                ObsEvent::PenaltyAdded { .. } => {
                    exchange.penalties += 1;
                    station.penalties += 1;
                    if station.first_penalty_us.is_none() {
                        station.first_penalty_us = Some(t);
                    }
                }
                ObsEvent::DiagnosisFlagged { .. } => {
                    exchange.flagged = true;
                    station.diagnoses += 1;
                    if station.first_diagnosis_us.is_none() {
                        station.first_diagnosis_us = Some(t);
                    }
                }
                // CtsRx / AckTx / BackoffAssigned carry the id and
                // already widened the span window above.
                _ => {}
            }
        }
        for exchange in set.exchanges.values() {
            if let Some(station) = set.stations.get_mut(&exchange.src()) {
                station.exchanges += 1;
            }
        }
        set
    }

    /// Records every station's detection latencies into `registry` as
    /// the two shared-geometry histograms
    /// ([`PENALTY_LATENCY_HIST`], [`DIAGNOSIS_LATENCY_HIST`]).
    ///
    /// Stations that never drew a penalty (honest senders) or never
    /// crossed the diagnosis threshold contribute nothing — the
    /// histograms measure reaction time to *detected* misbehavior,
    /// while detection *rates* stay with the existing diagnosis
    /// metrics.
    pub fn record_detection_latencies(&self, registry: &Registry) {
        self.record_detection_latencies_for(registry, "window");
    }

    /// Like [`Self::record_detection_latencies`], but names the
    /// histograms after the deviation detector that produced the
    /// diagnoses (see [`detector_latency_hists`]), so a sweep that runs
    /// several detectors keeps their reaction-time distributions apart.
    pub fn record_detection_latencies_for(&self, registry: &Registry, detector: &str) {
        let (penalty_name, diagnosis_name) = detector_latency_hists(detector);
        let penalty = registry.histogram(&penalty_name, &DETECTION_LATENCY_BOUNDS_US);
        let diagnosis = registry.histogram(&diagnosis_name, &DETECTION_LATENCY_BOUNDS_US);
        for station in self.stations.values() {
            if let Some(latency) = station.penalty_latency_us() {
                penalty.record(latency);
            }
            if let Some(latency) = station.diagnosis_latency_us() {
                diagnosis.record(latency);
            }
        }
    }
}

/// The `(penalty, diagnosis)` histogram names for a detector kind.
///
/// The paper's window detector keeps the original unqualified names so
/// every report produced before detectors became pluggable still lines
/// up; the alternatives get an `obs.detect.<kind>.` prefix.
#[must_use]
pub fn detector_latency_hists(detector: &str) -> (String, String) {
    if detector == "window" {
        (
            PENALTY_LATENCY_HIST.to_owned(),
            DIAGNOSIS_LATENCY_HIST.to_owned(),
        )
    } else {
        (
            format!("obs.detect.{detector}.penalty_latency_us"),
            format!("obs.detect.{detector}.diagnosis_latency_us"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{exchange_id, ObsEvent, Record};

    fn rec(time_us: u64, node: u32, event: ObsEvent) -> Record {
        Record {
            time_us,
            node,
            event,
        }
    }

    /// One clean exchange from n1 to n2, observed end to end.
    fn clean_exchange(seq: u64, base_us: u64) -> Vec<Record> {
        let xid = exchange_id(1, seq);
        vec![
            rec(
                base_us,
                1,
                ObsEvent::RtsTx {
                    dst: 2,
                    seq,
                    attempt: 1,
                    xid,
                },
            ),
            rec(base_us + 10, 2, ObsEvent::CtsTx { dst: 1, xid }),
            rec(base_us + 20, 1, ObsEvent::CtsRx { src: 2, seq, xid }),
            rec(
                base_us + 30,
                1,
                ObsEvent::DataTx {
                    dst: 2,
                    seq,
                    attempt: 1,
                    xid,
                },
            ),
            rec(base_us + 40, 2, ObsEvent::AckTx { dst: 1, xid }),
            rec(base_us + 50, 1, ObsEvent::AckRx { src: 2, seq, xid }),
        ]
    }

    #[test]
    fn exchange_span_reassembles_the_handshake() {
        let records = clean_exchange(3, 100);
        let set = SpanSet::from_records(&records);
        assert_eq!(set.exchanges.len(), 1);
        let span = &set.exchanges[&exchange_id(1, 3)];
        assert!(span.complete());
        assert_eq!(span.src(), 1);
        assert_eq!(span.start_us, 100);
        assert_eq!(span.end_us, 150);
        assert_eq!(span.duration_us(), 50);
        assert_eq!(span.rts_us, Some(100));
        assert_eq!(span.cts_us, Some(110));
        assert_eq!(span.data_us, Some(130));
        assert_eq!(span.ack_us, Some(150));
        assert_eq!(set.stations[&1].exchanges, 1);
        assert_eq!(set.stations[&1].first_access_us, Some(100));
    }

    #[test]
    fn interleaved_exchanges_stay_separate() {
        let mut records = clean_exchange(0, 0);
        records.extend(clean_exchange(1, 25));
        records.sort_by_key(|r| r.time_us);
        let set = SpanSet::from_records(&records);
        assert_eq!(set.exchanges.len(), 2);
        assert!(set.exchanges[&exchange_id(1, 0)].complete());
        assert!(set.exchanges[&exchange_id(1, 1)].complete());
        assert_eq!(set.stations[&1].exchanges, 2);
    }

    #[test]
    fn detection_latency_is_onset_to_first_monitor_verdict() {
        let xid = exchange_id(5, 0);
        let records = vec![
            rec(
                1_000,
                5,
                ObsEvent::RtsTx {
                    dst: 0,
                    seq: 0,
                    attempt: 1,
                    xid,
                },
            ),
            rec(
                4_000,
                0,
                ObsEvent::PenaltyAdded {
                    src: 5,
                    penalty_slots: 3.0,
                    assigned_slots: 10.0,
                    observed_slots: 7.0,
                    xid,
                },
            ),
            rec(
                9_000,
                0,
                ObsEvent::PenaltyAdded {
                    src: 5,
                    penalty_slots: 2.0,
                    assigned_slots: 9.0,
                    observed_slots: 7.0,
                    xid: exchange_id(5, 1),
                },
            ),
            rec(
                21_000,
                0,
                ObsEvent::DiagnosisFlagged {
                    src: 5,
                    window_sum: 7.5,
                    xid: exchange_id(5, 2),
                },
            ),
        ];
        let set = SpanSet::from_records(&records);
        let station = &set.stations[&5];
        assert_eq!(station.penalty_latency_us(), Some(3_000));
        assert_eq!(station.diagnosis_latency_us(), Some(20_000));
        assert_eq!(station.penalties, 2);
        assert_eq!(station.diagnoses, 1);

        let registry = Registry::new();
        set.record_detection_latencies(&registry);
        let snap = registry.snapshot();
        let penalty = &snap.histograms[PENALTY_LATENCY_HIST];
        assert_eq!(penalty.total, 1);
        assert_eq!(penalty.sum, 3_000);
        let diagnosis = &snap.histograms[DIAGNOSIS_LATENCY_HIST];
        assert_eq!(diagnosis.total, 1);
        assert_eq!(diagnosis.sum, 20_000);
    }

    #[test]
    fn honest_stations_contribute_no_latency_samples() {
        let records = clean_exchange(0, 0);
        let set = SpanSet::from_records(&records);
        assert_eq!(set.stations[&1].penalty_latency_us(), None);
        let registry = Registry::new();
        set.record_detection_latencies(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms[PENALTY_LATENCY_HIST].total, 0);
        assert_eq!(snap.histograms[DIAGNOSIS_LATENCY_HIST].total, 0);
    }

    #[test]
    fn detector_latency_hist_names_keep_the_window_legacy_names() {
        assert_eq!(
            detector_latency_hists("window"),
            (
                PENALTY_LATENCY_HIST.to_owned(),
                DIAGNOSIS_LATENCY_HIST.to_owned()
            )
        );
        assert_eq!(
            detector_latency_hists("cusum"),
            (
                "obs.detect.cusum.penalty_latency_us".to_owned(),
                "obs.detect.cusum.diagnosis_latency_us".to_owned()
            )
        );
        assert_eq!(
            detector_latency_hists("cw").0,
            "obs.detect.cw.penalty_latency_us"
        );
    }

    #[test]
    fn recording_for_a_detector_uses_the_qualified_names() {
        let mut records = clean_exchange(7, 0);
        records.push(rec(
            3_000,
            2,
            ObsEvent::PenaltyAdded {
                src: 1,
                penalty_slots: 4.0,
                assigned_slots: 10.0,
                observed_slots: 6.0,
                xid: exchange_id(1, 7),
            },
        ));
        let set = SpanSet::from_records(&records);
        let registry = Registry::new();
        set.record_detection_latencies_for(&registry, "cusum");
        let snap = registry.snapshot();
        assert_eq!(
            snap.histograms["obs.detect.cusum.penalty_latency_us"].total,
            1
        );
        assert!(!snap.histograms.contains_key(PENALTY_LATENCY_HIST));
    }

    #[test]
    fn events_without_an_xid_are_ignored() {
        let records = vec![
            rec(0, 1, ObsEvent::BackoffDrawn { dst: 2, slots: 9 }),
            rec(
                5,
                1,
                ObsEvent::Note {
                    category: "x".into(),
                    detail: "y".into(),
                },
            ),
        ];
        let set = SpanSet::from_records(&records);
        assert!(set.exchanges.is_empty());
        assert!(set.stations.is_empty());
    }
}
