//! PHY configuration and threshold calibration.

use crate::pathloss::{PathLoss, Shadowing, DEFAULT_TX_POWER_MW, SPEED_OF_LIGHT};
use crate::units::{Db, Dbm, Meters};

/// Complete radio configuration for a simulation.
///
/// The paper calibrates its ns-2 radios indirectly: "the Carrier Sense and
/// Receive Thresholds are selected such that a transmission is received
/// with 50 % probability at a distance of 250 m, and sensed with 50 %
/// probability at a distance of 550 m". [`PhyConfig::calibrated`] performs
/// exactly that calibration: with zero-mean shadowing, the 50 % point is
/// where the *mean* received power equals the threshold.
///
/// ```
/// use airguard_phy::PhyConfig;
/// use airguard_phy::units::Meters;
///
/// let cfg = PhyConfig::paper_default();
/// // Reception is 50/50 exactly at 250 m...
/// assert!((cfg.prob_receive(Meters::new(250.0)) - 0.5).abs() < 1e-9);
/// // ...and carrier sense is 50/50 exactly at 550 m.
/// assert!((cfg.prob_sense(Meters::new(550.0)) - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhyConfig {
    /// The propagation model (log-distance mean + Gaussian shadowing).
    pub model: Shadowing,
    /// Transmit power used by every node.
    pub tx_power: Dbm,
    /// Minimum received power for a frame to be decodable.
    pub rx_threshold: Dbm,
    /// Minimum received power for the channel to appear busy.
    pub cs_threshold: Dbm,
    /// Capture margin: an earlier frame survives an overlapping one if it
    /// is at least this much stronger (ns-2 uses 10 dB).
    pub capture: Db,
}

impl PhyConfig {
    /// Calibrates thresholds from 50 %-probability distances.
    ///
    /// # Panics
    ///
    /// Panics if `rx_50` is not closer than `cs_50` — carrier sensing must
    /// reach at least as far as reception or the MAC would decode frames it
    /// cannot even sense.
    #[must_use]
    pub fn calibrated(model: Shadowing, tx_power: Dbm, rx_50: Meters, cs_50: Meters) -> Self {
        assert!(
            rx_50 <= cs_50,
            "receive range ({rx_50}) cannot exceed carrier-sense range ({cs_50})"
        );
        PhyConfig {
            model,
            tx_power,
            rx_threshold: tx_power - model.mean_loss(rx_50),
            cs_threshold: tx_power - model.mean_loss(cs_50),
            capture: Db::new(10.0),
        }
    }

    /// The exact configuration of the paper's simulations: shadowing with
    /// β = 2 and σ = 1 dB, ns-2 default transmit power, reception 50 % at
    /// 250 m, carrier sense 50 % at 550 m, 10 dB capture.
    #[must_use]
    pub fn paper_default() -> Self {
        PhyConfig::calibrated(
            Shadowing::new(2.0, 1.0),
            Dbm::from_milliwatts(DEFAULT_TX_POWER_MW),
            Meters::new(250.0),
            Meters::new(550.0),
        )
    }

    /// A deterministic (σ = 0) variant with the same ranges, used by tests
    /// that need exact unit-disk behaviour.
    #[must_use]
    pub fn deterministic() -> Self {
        PhyConfig::calibrated(
            Shadowing::new(2.0, 0.0),
            Dbm::from_milliwatts(DEFAULT_TX_POWER_MW),
            Meters::new(250.0),
            Meters::new(550.0),
        )
    }

    /// Analytic probability that a frame transmitted at `d` meters is
    /// decodable at the listener.
    #[must_use]
    pub fn prob_receive(&self, d: Meters) -> f64 {
        self.model.prob_above(self.tx_power, d, self.rx_threshold)
    }

    /// Analytic probability that a transmission at `d` meters makes the
    /// listener's channel appear busy.
    #[must_use]
    pub fn prob_sense(&self, d: Meters) -> f64 {
        self.model.prob_above(self.tx_power, d, self.cs_threshold)
    }

    /// One-way propagation delay over `d` meters, in whole microseconds
    /// (rounded up so a propagated signal never arrives at the instant it
    /// was sent).
    #[must_use]
    pub fn propagation_delay(&self, d: Meters) -> airguard_sim::SimDuration {
        let micros = (d.value() / SPEED_OF_LIGHT * 1e6).ceil() as u64;
        airguard_sim::SimDuration::from_micros(micros.max(1))
    }
}

impl Default for PhyConfig {
    fn default() -> Self {
        PhyConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_ordered() {
        let cfg = PhyConfig::paper_default();
        // Farther 50 % distance ⇒ lower threshold.
        assert!(cfg.cs_threshold < cfg.rx_threshold);
    }

    #[test]
    fn probabilities_decrease_with_distance() {
        let cfg = PhyConfig::paper_default();
        let near = cfg.prob_receive(Meters::new(150.0));
        let mid = cfg.prob_receive(Meters::new(250.0));
        let far = cfg.prob_receive(Meters::new(400.0));
        assert!(near > mid && mid > far);
        assert!(
            near > 0.999,
            "150 m delivery should be near-certain: {near}"
        );
        assert!(
            far < 0.001,
            "400 m delivery should be near-impossible: {far}"
        );
    }

    #[test]
    fn paper_geometry_sense_probabilities() {
        // The Fig. 3 asymmetry: R (500 m from flow A) senses it with high
        // probability; the far-side sender (650 m) rarely does; the
        // near-side sender (350 m) always does.
        let cfg = PhyConfig::paper_default();
        let at_r = cfg.prob_sense(Meters::new(500.0));
        let far_sender = cfg.prob_sense(Meters::new(650.0));
        let near_sender = cfg.prob_sense(Meters::new(350.0));
        assert!(at_r > 0.75, "sense at 500 m: {at_r}");
        assert!(far_sender < 0.15, "sense at 650 m: {far_sender}");
        assert!(near_sender > 0.999, "sense at 350 m: {near_sender}");
    }

    #[test]
    fn deterministic_config_is_unit_disk() {
        let cfg = PhyConfig::deterministic();
        assert_eq!(cfg.prob_receive(Meters::new(249.0)), 1.0);
        assert_eq!(cfg.prob_receive(Meters::new(251.0)), 0.0);
        assert_eq!(cfg.prob_sense(Meters::new(549.0)), 1.0);
        assert_eq!(cfg.prob_sense(Meters::new(551.0)), 0.0);
    }

    #[test]
    fn propagation_delay_rounds_up_and_is_positive() {
        let cfg = PhyConfig::paper_default();
        // 250 m ≈ 0.83 µs → 1 µs.
        assert_eq!(
            cfg.propagation_delay(Meters::new(250.0)),
            airguard_sim::SimDuration::from_micros(1)
        );
        assert_eq!(
            cfg.propagation_delay(Meters::new(0.0)),
            airguard_sim::SimDuration::from_micros(1)
        );
        // 600 m ≈ 2.0 µs → 2 µs.
        assert_eq!(
            cfg.propagation_delay(Meters::new(600.0)),
            airguard_sim::SimDuration::from_micros(3)
        );
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn rejects_inverted_ranges() {
        let _ = PhyConfig::calibrated(
            Shadowing::new(2.0, 1.0),
            Dbm::new(24.5),
            Meters::new(550.0),
            Meters::new(250.0),
        );
    }
}
