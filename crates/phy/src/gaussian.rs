//! Gaussian sampling and the normal CDF.
//!
//! The approved dependency set has `rand` but not `rand_distr`, so the
//! handful of normal-distribution primitives the shadowing model needs are
//! implemented here: a Box–Muller sampler and Φ/Q functions built on a
//! high-accuracy `erf` approximation (Abramowitz & Stegun 7.1.26,
//! |error| < 1.5e-7 — far below the 1 dB shadowing σ it is compared with).

use rand::RngExt;

/// Draws one standard-normal deviate using the Box–Muller transform.
///
/// Statistically this wastes the second deviate of each pair; the medium
/// samples at most a few deviates per transmission, so simplicity and
/// statelessness win over caching.
pub fn standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a normal deviate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `sigma` is negative or NaN.
pub fn normal<R: rand::Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(
        sigma >= 0.0 && !sigma.is_nan(),
        "standard deviation must be non-negative, got {sigma}"
    );
    mean + sigma * standard_normal(rng)
}

/// The error function, via Abramowitz & Stegun formula 7.1.26.
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// The standard normal CDF Φ(x).
#[must_use]
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// The standard normal tail probability Q(x) = 1 − Φ(x).
#[must_use]
pub fn q(x: f64) -> f64 {
    1.0 - phi(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_sim::MasterSeed;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables of erf.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_878),
            (1.0, 0.842_700_793),
            (2.0, 0.995_322_265),
            (-1.0, -0.842_700_793),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {}, want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn phi_reference_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!((phi(1.0) - 0.841_344_746).abs() < 2e-7);
        assert!((phi(-1.0) - 0.158_655_254).abs() < 2e-7);
        assert!((phi(1.96) - 0.975_002_105).abs() < 2e-6);
    }

    #[test]
    fn q_is_complement_of_phi() {
        for x in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            assert!((q(x) + phi(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sampler_moments_match() {
        let mut rng = MasterSeed::new(1234).stream("gauss-test", 0);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let v = normal(rng.rng(), 3.0, 2.0);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.02, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.1, "variance was {var}");
    }

    #[test]
    fn sampler_tail_fraction_matches_phi() {
        let mut rng = MasterSeed::new(99).stream("gauss-test", 1);
        let n = 100_000;
        let above_one =
            (0..n).filter(|_| standard_normal(rng.rng()) > 1.0).count() as f64 / n as f64;
        assert!(
            (above_one - q(1.0)).abs() < 0.01,
            "P(X>1) sampled as {above_one}, want {}",
            q(1.0)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normal_rejects_negative_sigma() {
        let mut rng = MasterSeed::new(1).stream("gauss-test", 2);
        let _ = normal(rng.rng(), 0.0, -1.0);
    }
}
