//! Radio substrate: propagation, carrier sensing, collisions, capture.
//!
//! The paper evaluates its protocol in ns-2 with the *shadowing* channel
//! model: log-distance path loss with exponent β = 2 plus a zero-mean
//! Gaussian deviate of σ = 1 dB, and reception/carrier-sense thresholds
//! calibrated so that a transmission is *received* with 50 % probability at
//! 250 m and *sensed* with 50 % probability at 550 m. This crate rebuilds
//! that substrate from scratch:
//!
//! * [`units`] — `Dbm`/`Db`/`Meters` newtypes and a planar [`units::Position`];
//! * [`pathloss`] — the [`pathloss::PathLoss`] models (free-space,
//!   log-distance, and the paper's shadowing model);
//! * [`config`] — [`PhyConfig`] with the 50 %-distance threshold
//!   calibration used throughout the study;
//! * [`medium`] — the shared [`Medium`] that samples, per transmission and
//!   listener, whether the frame is sensed and whether it is potentially
//!   receivable, at what power, and with what propagation delay;
//! * [`reception`] — the per-node [`reception::RxTracker`] that folds
//!   overlapping arrivals into carrier busy/idle edges and decode outcomes
//!   with ns-2 style 10 dB capture.
//!
//! The MAC layer consumes only three signals from all of this: *carrier
//! busy/idle edges*, *frame decoded*, and *frame garbled* — exactly the
//! interface of a real 802.11 PHY.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod gaussian;
pub mod medium;
pub mod pathloss;
pub mod reception;
pub mod tile;
pub mod units;

pub use config::PhyConfig;
pub use medium::{Fading, ListenerOutcome, Medium, TransmissionId, TxOutcome};
pub use reception::{BusyEdge, DecodeOutcome, RxTracker};
pub use tile::{interference_cutoff, TileIndex};
pub use units::{Db, Dbm, Meters, Position};
