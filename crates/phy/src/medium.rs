//! The shared wireless medium.
//!
//! The [`Medium`] owns every node's position and the propagation model.
//! When a node starts transmitting, the medium samples — independently per
//! listener, as the paper's per-slot-variance ns-2 patch requires at the
//! granularity that matters for idle-slot counting — the shadowing deviate
//! for that (transmission, listener) pair and reports:
//!
//! * whether the listener *senses* the transmission (channel appears busy),
//! * whether the frame is *potentially receivable* (decodable absent
//!   collisions), and
//! * the received power (for capture resolution) and propagation delay.
//!
//! The medium is purely combinational: the simulation runner schedules the
//! arrival/departure events and feeds them to each listener's
//! [`crate::reception::RxTracker`].

use airguard_fault::{BurstLoss, GilbertElliott};
use airguard_sim::{MasterSeed, NodeId, RngStream, SimDuration};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::PhyConfig;
use crate::gaussian;
use crate::pathloss::PathLoss;
use crate::tile::{interference_cutoff, pair_key, TileIndex, CLAMP_SIGMAS};
use crate::units::{Db, Dbm, Position};

/// Temporal behaviour of the shadowing deviate.
///
/// The paper samples its Gaussian term per transmission (ns-2's
/// shadowing model is time-varying); physically, log-normal shadowing is
/// caused by static obstacles and is *coherent* per link. Both
/// interpretations are supported; the difference is an ablation axis
/// (coherent shadowing turns marginal links into persistent asymmetries
/// instead of per-packet noise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fading {
    /// Redraw the deviate independently for every (transmission,
    /// listener) pair — the paper's ns-2 behaviour and the default.
    #[default]
    PerTransmission,
    /// Draw one deviate per (transmitter, listener) link at first use
    /// and keep it for the whole run.
    Coherent,
}

/// Identifier of one on-air transmission, unique within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransmissionId(u64);

impl TransmissionId {
    /// The raw counter value (diagnostics only).
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

/// What one listener experiences for one transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListenerOutcome {
    /// The listening node.
    pub listener: NodeId,
    /// Propagation delay from transmitter to this listener.
    pub delay: SimDuration,
    /// Received power at the listener for this transmission.
    pub power: Dbm,
    /// The listener's carrier-sense sees this transmission.
    pub sensed: bool,
    /// Above the receive threshold: decodable absent collisions.
    pub receivable: bool,
    /// An injected burst-loss fault dropped this frame at the listener
    /// (the carrier is still sensed; `receivable` is already false).
    pub fault_lost: bool,
}

/// The sampled fate of one transmission across all listeners.
///
/// Only listeners that at least *sense* the transmission are included —
/// a transmission below the carrier-sense threshold is indistinguishable
/// from silence in this model (aggregate sub-threshold interference is not
/// modelled, matching the ns-2 threshold receiver).
#[derive(Debug, Clone, PartialEq)]
pub struct TxOutcome {
    /// Unique id for correlating arrival and departure events.
    pub id: TransmissionId,
    /// The transmitting node.
    pub transmitter: NodeId,
    /// Per-listener samples, in node-id order.
    pub listeners: Vec<ListenerOutcome>,
}

/// Precomputed per-link invariants. Node positions never change within a
/// run, so the distance-derived quantities — the deterministic mean loss
/// (two `log10` calls per query) and the propagation delay — are computed
/// once per ordered (transmitter, listener) pair instead of per
/// transmission.
#[derive(Debug, Clone, Copy)]
struct LinkState {
    /// Propagation delay over this link.
    delay: SimDuration,
    /// Deterministic mean path loss at the link distance.
    mean_loss: Db,
    /// Frozen shadowing offset ([`Fading::Coherent`] only), drawn lazily
    /// at the link's first use to preserve the RNG draw order of the
    /// uncached implementation.
    coherent_offset: Option<Db>,
}

/// Sentinel transmission count used to key a link's one *coherent*
/// deviate: real per-transmission counts grow from zero and can never
/// reach it.
const COHERENT_DRAW: u64 = u64::MAX;

/// One clamped shadowing deviate (as a dB offset added to received
/// power) derived entirely from `key`. Clamping to ±[`CLAMP_SIGMAS`]σ
/// is what bounds best-case power and makes the interference cutoff
/// finite.
fn clamped_offset(key: u64, sigma: f64) -> Db {
    let mut rng = StdRng::seed_from_u64(key);
    let z = gaussian::standard_normal(&mut rng).clamp(-CLAMP_SIGMAS, CLAMP_SIGMAS);
    Db::new(sigma * z)
}

/// Order-independent sampling state of the spatial medium mode.
///
/// Instead of one shared RNG stream consumed in iteration order (whose
/// position depends on *every* pair ever sampled), each (transmission,
/// listener) pair derives its deviate from a key of
/// `(base, tx global id, per-transmitter tx count, listener global id)`
/// — so pruning distant listeners, or running one spatial component in
/// isolation, cannot shift any other pair's draw.
#[derive(Debug)]
struct SpatialState {
    /// Candidate listeners per node within the interference cutoff.
    index: TileIndex,
    /// Per-candidate-edge link invariants, parallel to the index's CSR
    /// candidate array.
    edges: Vec<LinkState>,
    /// Base mixing key (the `"phy"` stream key under the master seed).
    base_key: u64,
    /// Per-transmitter transmission counter, part of every pair key.
    tx_counts: Vec<u64>,
}

/// The shared medium: node positions + propagation model + sampling RNG.
#[derive(Debug)]
pub struct Medium {
    cfg: PhyConfig,
    positions: Vec<Position>,
    rng: RngStream,
    next_tx: u64,
    fading: Fading,
    /// Dense n×n link table, indexed `transmitter.index() * n + listener`
    /// (empty in spatial mode).
    links: Vec<LinkState>,
    /// Injected Gilbert–Elliott burst-loss channels, one per listener
    /// (empty when no burst-loss fault is configured).
    burst: Vec<GilbertElliott>,
    /// Global node id per local slot. Identity for a full-network
    /// medium; a sub-network medium (one spatial component) carries the
    /// component members' global ids so sampling keys and fault streams
    /// match the unsharded run.
    node_ids: Vec<u32>,
    /// Spatial sampling state; `None` selects the legacy dense path.
    spatial: Option<SpatialState>,
}

impl Medium {
    /// Creates a medium over nodes at `positions` (node id = index).
    ///
    /// `rng` should be a dedicated stream (e.g. `seed.stream("phy", 0)`) so
    /// channel sampling is independent of MAC-level randomness.
    #[must_use]
    pub fn new(cfg: PhyConfig, positions: Vec<Position>, rng: RngStream) -> Self {
        let n = positions.len();
        let mut links = Vec::with_capacity(n * n);
        for &tx_pos in &positions {
            for &rx_pos in &positions {
                let d = tx_pos.distance_to(rx_pos);
                links.push(LinkState {
                    delay: cfg.propagation_delay(d),
                    mean_loss: cfg.model.mean_loss(d),
                    coherent_offset: None,
                });
            }
        }
        Medium {
            cfg,
            positions,
            rng,
            next_tx: 0,
            fading: Fading::PerTransmission,
            links,
            burst: Vec::new(),
            node_ids: (0..n as u32).collect(),
            spatial: None,
        }
    }

    /// Creates a medium in *spatial* mode: candidate listeners come
    /// from a tile index over the interference cutoff
    /// ([`crate::tile::interference_cutoff`]), and shadowing deviates
    /// are drawn per (transmission, listener) pair from a mixed key
    /// instead of a shared sequential stream. Memory and sampling cost
    /// scale with the number of in-range pairs, not n².
    ///
    /// `node_ids` maps each local slot to its global node id
    /// (`(0..n).collect()` for a full network); keys and fault streams
    /// use global ids, so a component simulated in isolation samples
    /// exactly what the full network would. `tiled` selects the grid
    /// accelerated index; `false` builds the same candidate lists by
    /// brute force (equivalence-tested — outcomes are identical).
    ///
    /// # Panics
    ///
    /// Panics if `node_ids` and `positions` differ in length.
    #[must_use]
    pub fn new_spatial(
        cfg: PhyConfig,
        positions: Vec<Position>,
        node_ids: Vec<u32>,
        seed: MasterSeed,
        tiled: bool,
    ) -> Self {
        assert_eq!(
            node_ids.len(),
            positions.len(),
            "one global id per position"
        );
        let cutoff = interference_cutoff(&cfg);
        let index = if tiled {
            TileIndex::build(&positions, cutoff)
        } else {
            TileIndex::build_dense(&positions, cutoff)
        };
        let mut edges = Vec::with_capacity(index.edge_count());
        for (i, &tx_pos) in positions.iter().enumerate() {
            for &j in index.candidates(i) {
                let d = tx_pos.distance_to(positions[j as usize]);
                edges.push(LinkState {
                    delay: cfg.propagation_delay(d),
                    mean_loss: cfg.model.mean_loss(d),
                    coherent_offset: None,
                });
            }
        }
        let rng = seed.stream("phy", 0);
        let base_key = rng.key();
        let n = positions.len();
        Medium {
            cfg,
            positions,
            rng,
            next_tx: 0,
            fading: Fading::PerTransmission,
            links: Vec::new(),
            burst: Vec::new(),
            node_ids,
            spatial: Some(SpatialState {
                index,
                edges,
                base_key,
                tx_counts: vec![0; n],
            }),
        }
    }

    /// True when this medium samples in spatial (tile/pair-key) mode.
    #[must_use]
    pub fn is_spatial(&self) -> bool {
        self.spatial.is_some()
    }

    /// The spatial candidate index, when in spatial mode.
    #[must_use]
    pub fn spatial_index(&self) -> Option<&TileIndex> {
        self.spatial.as_ref().map(|s| &s.index)
    }

    /// Selects the temporal fading behaviour (default:
    /// [`Fading::PerTransmission`], the paper's choice).
    pub fn set_fading(&mut self, fading: Fading) {
        self.fading = fading;
    }

    /// Enables injected Gilbert–Elliott burst loss.
    ///
    /// Each listener gets an independent channel seeded from the
    /// dedicated `"fault.loss"` stream family, so enabling the injector
    /// never perturbs the shadowing RNG: the clean part of a faulted
    /// trace stays byte-identical to its unfaulted twin.
    pub fn set_burst_loss(&mut self, cfg: BurstLoss, seed: MasterSeed) {
        // Channels are seeded by *global* listener id, so a spatial
        // component's sub-medium drops the same frames the full network
        // would (the identity mapping makes this a no-op for legacy
        // mediums).
        self.burst = self
            .node_ids
            .iter()
            .map(|&gid| GilbertElliott::new(cfg, seed.stream("fault.loss", u64::from(gid))))
            .collect();
    }

    /// Number of nodes sharing this medium.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not registered with this medium.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// The radio configuration in force.
    #[must_use]
    pub fn config(&self) -> &PhyConfig {
        &self.cfg
    }

    /// Samples the fate of a transmission starting now at `transmitter`,
    /// writing per-listener outcomes (in node-id order) into `out`.
    ///
    /// This is the hot-path entry point: `out` is cleared and refilled,
    /// so a caller-owned scratch buffer makes sampling allocation-free.
    /// [`Medium::start_tx`] wraps it when an owned [`TxOutcome`] is more
    /// convenient.
    ///
    /// # Panics
    ///
    /// Panics if `transmitter` is not registered with this medium.
    pub fn sample_tx(
        &mut self,
        transmitter: NodeId,
        out: &mut Vec<ListenerOutcome>,
    ) -> TransmissionId {
        out.clear();
        let id = TransmissionId(self.next_tx);
        self.next_tx += 1;

        if self.spatial.is_some() {
            self.sample_tx_spatial(transmitter, out);
            return id;
        }

        let n = self.positions.len();
        let row = transmitter.index() * n;
        for idx in 0..n {
            if idx == transmitter.index() {
                continue;
            }
            let link = self.links[row + idx];
            let loss = match self.fading {
                Fading::PerTransmission => self
                    .cfg
                    .model
                    .sample_loss_from_mean(link.mean_loss, self.rng.rng()),
                Fading::Coherent => {
                    let offset = match link.coherent_offset {
                        Some(offset) => offset,
                        None => {
                            let offset = self
                                .cfg
                                .model
                                .sample_loss_from_mean(link.mean_loss, self.rng.rng())
                                - link.mean_loss;
                            self.links[row + idx].coherent_offset = Some(offset);
                            offset
                        }
                    };
                    link.mean_loss + offset
                }
            };
            let power = self.cfg.tx_power - loss;
            let sensed = power >= self.cfg.cs_threshold;
            if !sensed {
                continue;
            }
            // The burst-loss injector only samples deliveries that the
            // channel model would otherwise decode, so its stream
            // position depends only on the receivable-delivery count.
            let mut receivable = power >= self.cfg.rx_threshold;
            let mut fault_lost = false;
            if receivable {
                if let Some(channel) = self.burst.get_mut(idx) {
                    if channel.drops() {
                        receivable = false;
                        fault_lost = true;
                    }
                }
            }
            out.push(ListenerOutcome {
                listener: NodeId::new(idx as u32),
                delay: link.delay,
                power,
                sensed,
                receivable,
                fault_lost,
            });
        }
        id
    }

    /// The spatial sampling path: candidates from the tile index, one
    /// key-derived clamped deviate per pair. Iteration is ascending by
    /// node id (the CSR rows are sorted), so listener outcomes come
    /// back in exactly the dense path's order.
    fn sample_tx_spatial(&mut self, transmitter: NodeId, out: &mut Vec<ListenerOutcome>) {
        let Medium {
            cfg,
            burst,
            node_ids,
            spatial,
            fading,
            ..
        } = self;
        let Some(spatial) = spatial.as_mut() else {
            return;
        };
        let t = transmitter.index();
        let tx_gid = node_ids[t];
        let count = spatial.tx_counts[t];
        spatial.tx_counts[t] += 1;
        let sigma = cfg.model.sigma_db;
        let (row_start, cands) = spatial.index.row(t);
        for (k, &cand) in cands.iter().enumerate() {
            let link = &mut spatial.edges[row_start + k];
            let rx_gid = node_ids[cand as usize];
            let offset = match fading {
                Fading::PerTransmission => {
                    clamped_offset(pair_key(spatial.base_key, tx_gid, count, rx_gid), sigma)
                }
                Fading::Coherent => match link.coherent_offset {
                    Some(offset) => offset,
                    None => {
                        // Count-free key: one frozen deviate per link,
                        // cached so repeat transmissions skip the draw.
                        let offset = clamped_offset(
                            pair_key(spatial.base_key, tx_gid, COHERENT_DRAW, rx_gid),
                            sigma,
                        );
                        link.coherent_offset = Some(offset);
                        offset
                    }
                },
            };
            // The model adds the deviate to received power, i.e.
            // subtracts it from the loss.
            let power = cfg.tx_power - (link.mean_loss - offset);
            if power < cfg.cs_threshold {
                continue;
            }
            let mut receivable = power >= cfg.rx_threshold;
            let mut fault_lost = false;
            if receivable {
                if let Some(channel) = burst.get_mut(cand as usize) {
                    if channel.drops() {
                        receivable = false;
                        fault_lost = true;
                    }
                }
            }
            out.push(ListenerOutcome {
                listener: NodeId::new(cand),
                delay: link.delay,
                power,
                sensed: true,
                receivable,
                fault_lost,
            });
        }
    }

    /// Samples the fate of a transmission starting now at `transmitter`.
    ///
    /// Allocates a fresh listener vector per call; the simulation runner
    /// uses [`Medium::sample_tx`] with a reused scratch buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `transmitter` is not registered with this medium.
    pub fn start_tx(&mut self, transmitter: NodeId) -> TxOutcome {
        let mut listeners = Vec::new();
        let id = self.sample_tx(transmitter, &mut listeners);
        TxOutcome {
            id,
            transmitter,
            listeners,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_phy_test_util::*;
    use airguard_sim::MasterSeed;

    // Local helper module so tests read cleanly.
    mod airguard_phy_test_util {
        use super::*;

        pub fn medium_with(cfg: PhyConfig, positions: Vec<Position>, seed: u64) -> Medium {
            Medium::new(cfg, positions, MasterSeed::new(seed).stream("phy", 0))
        }
    }

    #[test]
    fn transmitter_never_hears_itself() {
        let mut m = medium_with(
            PhyConfig::deterministic(),
            vec![Position::new(0.0, 0.0), Position::new(100.0, 0.0)],
            1,
        );
        let out = m.start_tx(NodeId::new(0));
        assert!(out.listeners.iter().all(|l| l.listener != NodeId::new(0)));
        assert_eq!(out.transmitter, NodeId::new(0));
    }

    #[test]
    fn deterministic_ranges_partition_listeners() {
        // 100 m: receivable; 400 m: sensed only; 600 m: silent.
        let mut m = medium_with(
            PhyConfig::deterministic(),
            vec![
                Position::new(0.0, 0.0),
                Position::new(100.0, 0.0),
                Position::new(400.0, 0.0),
                Position::new(600.0, 0.0),
            ],
            2,
        );
        let out = m.start_tx(NodeId::new(0));
        let by_id = |i: u32| out.listeners.iter().find(|l| l.listener == NodeId::new(i));
        let near = by_id(1).expect("100 m listener sensed");
        assert!(near.receivable && near.sensed);
        let mid = by_id(2).expect("400 m listener sensed");
        assert!(mid.sensed && !mid.receivable);
        assert!(by_id(3).is_none(), "600 m listener silent");
    }

    #[test]
    fn transmission_ids_are_unique_and_increasing() {
        let mut m = medium_with(
            PhyConfig::deterministic(),
            vec![Position::new(0.0, 0.0), Position::new(10.0, 0.0)],
            3,
        );
        let a = m.start_tx(NodeId::new(0)).id;
        let b = m.start_tx(NodeId::new(1)).id;
        assert!(a < b);
    }

    #[test]
    fn shadowing_sense_rate_matches_calibration() {
        // At the 550 m calibration point, ~50 % of transmissions are sensed.
        let mut m = medium_with(
            PhyConfig::paper_default(),
            vec![Position::new(0.0, 0.0), Position::new(550.0, 0.0)],
            4,
        );
        let n = 20_000;
        let sensed = (0..n)
            .filter(|_| !m.start_tx(NodeId::new(0)).listeners.is_empty())
            .count() as f64
            / n as f64;
        assert!(
            (sensed - 0.5).abs() < 0.02,
            "sense rate at 550 m was {sensed}"
        );
    }

    #[test]
    fn shadowing_receive_rate_matches_calibration() {
        let mut m = medium_with(
            PhyConfig::paper_default(),
            vec![Position::new(0.0, 0.0), Position::new(250.0, 0.0)],
            5,
        );
        let n = 20_000;
        let received = (0..n)
            .filter(|_| {
                m.start_tx(NodeId::new(0))
                    .listeners
                    .first()
                    .is_some_and(|l| l.receivable)
            })
            .count() as f64
            / n as f64;
        assert!(
            (received - 0.5).abs() < 0.02,
            "receive rate at 250 m was {received}"
        );
    }

    #[test]
    fn per_listener_samples_are_independent() {
        // Two listeners at the same marginal distance: their sense outcomes
        // must not be perfectly correlated.
        let mut m = medium_with(
            PhyConfig::paper_default(),
            vec![
                Position::new(0.0, 0.0),
                Position::new(550.0, 0.0),
                Position::new(-550.0, 0.0),
            ],
            6,
        );
        let mut disagreements = 0;
        let n = 5_000;
        for _ in 0..n {
            let out = m.start_tx(NodeId::new(0));
            let heard_1 = out.listeners.iter().any(|l| l.listener == NodeId::new(1));
            let heard_2 = out.listeners.iter().any(|l| l.listener == NodeId::new(2));
            if heard_1 != heard_2 {
                disagreements += 1;
            }
        }
        // Independent 50/50 coins disagree half the time.
        let rate = f64::from(disagreements) / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "disagreement rate {rate}");
    }

    #[test]
    fn coherent_fading_freezes_each_link() {
        // At the marginal 550 m distance, per-transmission sampling flips
        // between sensed and silent; coherent sampling picks one fate for
        // the whole run.
        let mut m = medium_with(
            PhyConfig::paper_default(),
            vec![Position::new(0.0, 0.0), Position::new(550.0, 0.0)],
            9,
        );
        m.set_fading(Fading::Coherent);
        let first = !m.start_tx(NodeId::new(0)).listeners.is_empty();
        for _ in 0..200 {
            let now = !m.start_tx(NodeId::new(0)).listeners.is_empty();
            assert_eq!(now, first, "coherent link changed its fate");
        }
    }

    #[test]
    fn coherent_links_are_independent_per_direction_pair() {
        let mut m = medium_with(
            PhyConfig::paper_default(),
            vec![
                Position::new(0.0, 0.0),
                Position::new(550.0, 0.0),
                Position::new(-550.0, 0.0),
            ],
            10,
        );
        m.set_fading(Fading::Coherent);
        // Sample many transmissions; each link's outcome is constant but
        // the two links need not agree.
        let out = m.start_tx(NodeId::new(0));
        let l1 = out.listeners.iter().any(|l| l.listener == NodeId::new(1));
        let l2 = out.listeners.iter().any(|l| l.listener == NodeId::new(2));
        for _ in 0..50 {
            let out = m.start_tx(NodeId::new(0));
            assert_eq!(
                out.listeners.iter().any(|l| l.listener == NodeId::new(1)),
                l1
            );
            assert_eq!(
                out.listeners.iter().any(|l| l.listener == NodeId::new(2)),
                l2
            );
        }
    }

    #[test]
    fn burst_loss_drops_receivable_frames_and_marks_them() {
        let mut m = medium_with(
            PhyConfig::deterministic(),
            vec![Position::new(0.0, 0.0), Position::new(100.0, 0.0)],
            11,
        );
        m.set_burst_loss(
            airguard_fault::BurstLoss {
                p_enter: 0.0,
                p_exit: 1.0,
                loss_good: 1.0,
                loss_bad: 1.0,
            },
            MasterSeed::new(11),
        );
        let out = m.start_tx(NodeId::new(0));
        let l = &out.listeners[0];
        assert!(l.sensed, "carrier still sensed under burst loss");
        assert!(!l.receivable && l.fault_lost);
    }

    #[test]
    fn zero_configured_burst_loss_changes_nothing_downstream() {
        // Enabling the injector must not touch the shadowing RNG: the
        // same seed with and without a (lossless) burst channel yields
        // identical outcomes apart from the marker field default.
        let positions = || vec![Position::new(0.0, 0.0), Position::new(550.0, 0.0)];
        let mut clean = medium_with(PhyConfig::paper_default(), positions(), 12);
        let mut faulted = medium_with(PhyConfig::paper_default(), positions(), 12);
        faulted.set_burst_loss(
            airguard_fault::BurstLoss {
                p_enter: 1.0,
                p_exit: 0.0,
                loss_good: 0.0,
                loss_bad: 0.0,
            },
            MasterSeed::new(12),
        );
        for _ in 0..500 {
            assert_eq!(
                clean.start_tx(NodeId::new(0)),
                faulted.start_tx(NodeId::new(0))
            );
        }
    }

    fn spatial_medium(positions: Vec<Position>, seed: u64, tiled: bool) -> Medium {
        let ids = (0..positions.len() as u32).collect();
        Medium::new_spatial(
            PhyConfig::paper_default(),
            positions,
            ids,
            MasterSeed::new(seed),
            tiled,
        )
    }

    fn circle(n: usize, radius: f64) -> Vec<Position> {
        (0..n)
            .map(|i| {
                Position::new(0.0, 0.0)
                    .offset_polar(radius, std::f64::consts::TAU * i as f64 / n as f64)
            })
            .collect()
    }

    #[test]
    fn spatial_tiled_and_dense_index_sample_identically() {
        let mut tiled = spatial_medium(circle(24, 300.0), 21, true);
        let mut dense = spatial_medium(circle(24, 300.0), 21, false);
        for _round in 0..50 {
            for i in 0..24 {
                assert_eq!(
                    tiled.start_tx(NodeId::new(i)),
                    dense.start_tx(NodeId::new(i))
                );
            }
        }
    }

    #[test]
    fn spatial_sampling_is_immune_to_distant_nodes() {
        // The sharding contract: a pair's outcome stream must not change
        // when causally unreachable nodes are simulated elsewhere. Two
        // nodes alone vs. the same two plus a far-away cluster.
        let near = vec![Position::new(0.0, 0.0), Position::new(250.0, 0.0)];
        let mut alone = spatial_medium(near.clone(), 33, true);
        let mut crowded = {
            let mut all = near;
            for k in 0..6 {
                all.push(Position::new(50_000.0 + 100.0 * f64::from(k), 0.0));
            }
            spatial_medium(all, 33, true)
        };
        for _ in 0..200 {
            let a = alone.start_tx(NodeId::new(0));
            let b = crowded.start_tx(NodeId::new(0));
            assert_eq!(a.listeners, b.listeners);
        }
    }

    #[test]
    fn spatial_submedium_with_global_ids_matches_full_network() {
        // A component's sub-medium (local slots, global ids) must sample
        // exactly what the full network samples for those nodes. Global
        // nodes 5 and 6 sit together; everyone else is out of range.
        let mut full_positions: Vec<Position> = (0..5)
            .map(|k| Position::new(-40_000.0 - 2_000.0 * f64::from(k), 0.0))
            .collect();
        full_positions.push(Position::new(0.0, 0.0)); // global 5
        full_positions.push(Position::new(250.0, 0.0)); // global 6
        let mut full = spatial_medium(full_positions.clone(), 44, true);
        let mut sub = Medium::new_spatial(
            PhyConfig::paper_default(),
            vec![full_positions[5], full_positions[6]],
            vec![5, 6],
            MasterSeed::new(44),
            true,
        );
        for _ in 0..200 {
            let in_full = full.start_tx(NodeId::new(5));
            let in_sub = sub.start_tx(NodeId::new(0));
            assert_eq!(in_full.listeners.len(), in_sub.listeners.len());
            for (f, s) in in_full.listeners.iter().zip(&in_sub.listeners) {
                assert_eq!(f.listener, NodeId::new(6));
                assert_eq!(s.listener, NodeId::new(1));
                assert_eq!(
                    (f.power, f.sensed, f.receivable),
                    (s.power, s.sensed, s.receivable)
                );
            }
        }
    }

    #[test]
    fn spatial_sense_rate_matches_calibration() {
        // The pair-keyed clamped sampler must reproduce the same 50 %
        // sense probability at 550 m as the sequential-stream sampler.
        let mut m = spatial_medium(
            vec![Position::new(0.0, 0.0), Position::new(550.0, 0.0)],
            55,
            true,
        );
        let n = 20_000;
        let sensed = (0..n)
            .filter(|_| !m.start_tx(NodeId::new(0)).listeners.is_empty())
            .count() as f64
            / f64::from(n);
        assert!(
            (sensed - 0.5).abs() < 0.02,
            "spatial sense rate at 550 m was {sensed}"
        );
    }

    #[test]
    fn spatial_coherent_fading_freezes_each_link() {
        let mut m = spatial_medium(
            vec![Position::new(0.0, 0.0), Position::new(550.0, 0.0)],
            66,
            true,
        );
        m.set_fading(Fading::Coherent);
        let first = !m.start_tx(NodeId::new(0)).listeners.is_empty();
        for _ in 0..200 {
            let now = !m.start_tx(NodeId::new(0)).listeners.is_empty();
            assert_eq!(now, first, "coherent spatial link changed its fate");
        }
    }

    #[test]
    fn spatial_burst_loss_streams_follow_global_ids() {
        // Sub-medium burst channels must be seeded by global listener
        // id, so the drop pattern at global node 6 is shard-invariant.
        let loss = airguard_fault::BurstLoss {
            p_enter: 0.3,
            p_exit: 0.3,
            loss_good: 0.2,
            loss_bad: 0.9,
        };
        let positions = vec![Position::new(0.0, 0.0), Position::new(100.0, 0.0)];
        let drops = |ids: Vec<u32>| {
            let mut m = Medium::new_spatial(
                PhyConfig::paper_default(),
                positions.clone(),
                ids,
                MasterSeed::new(77),
                true,
            );
            m.set_burst_loss(loss, MasterSeed::new(77));
            (0..300)
                .map(|_| m.start_tx(NodeId::new(0)).listeners[0].fault_lost)
                .collect::<Vec<bool>>()
        };
        assert_eq!(drops(vec![5, 6]), drops(vec![5, 6]), "reproducible");
        assert_ne!(
            drops(vec![5, 6]),
            drops(vec![5, 9]),
            "channel follows the listener's global id"
        );
    }

    #[test]
    fn receivable_implies_sensed() {
        let mut m = medium_with(
            PhyConfig::paper_default(),
            vec![Position::new(0.0, 0.0), Position::new(260.0, 0.0)],
            7,
        );
        for _ in 0..2_000 {
            for l in m.start_tx(NodeId::new(0)).listeners {
                assert!(l.sensed || !l.receivable);
            }
        }
    }
}
