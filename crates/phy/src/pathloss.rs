//! Path-loss and shadowing models.
//!
//! The study uses the ns-2 *shadowing* model:
//!
//! ```text
//! [ Pr(d) / Pr(d0) ]_dB = -10 β log10(d / d0) + X_dB,   X_dB ~ N(0, σ_dB)
//! ```
//!
//! with β = 2 (free-space exponent) and σ = 1 dB. The reference power
//! `Pr(d0)` at `d0` = 1 m is the Friis free-space value for the standard
//! ns-2 914 MHz WaveLAN radio. Deterministic models (σ = 0) are provided
//! for baseline comparisons and unit tests.

use crate::gaussian;
use crate::units::{Db, Dbm, Meters};

/// Speed of light, m/s (propagation delay).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// ns-2 default WaveLAN carrier frequency, Hz.
pub const DEFAULT_FREQUENCY_HZ: f64 = 914e6;

/// ns-2 default WaveLAN transmit power (281.8 mW ≈ 24.5 dBm).
pub const DEFAULT_TX_POWER_MW: f64 = 281.838_213;

/// A distance-dependent propagation model.
///
/// A model is queried two ways: for its *mean* loss at a distance (used to
/// calibrate thresholds and to compute analytic sense/receive
/// probabilities) and for a *sampled* loss (used per transmission per
/// listener during simulation). For deterministic models the two coincide.
pub trait PathLoss {
    /// Mean path loss at distance `d`, in dB (positive = attenuation).
    fn mean_loss(&self, d: Meters) -> Db;

    /// One random realization of the path loss at distance `d`.
    fn sample_loss<R: rand::Rng + ?Sized>(&self, d: Meters, rng: &mut R) -> Db {
        let _ = rng;
        self.mean_loss(d)
    }

    /// Standard deviation of the loss around its mean, in dB.
    fn sigma(&self) -> Db {
        Db::ZERO
    }

    /// Probability that the received power at distance `d` exceeds
    /// `threshold`, for a transmitter at `tx_power`.
    ///
    /// For deterministic models this is a step function of distance; for
    /// shadowing it is `Φ((mean_rx − threshold)/σ)`.
    fn prob_above(&self, tx_power: Dbm, d: Meters, threshold: Dbm) -> f64 {
        let mean_rx = tx_power - self.mean_loss(d);
        let sigma = self.sigma().value();
        // lint:allow(float-eq) — σ = 0.0 is the exact sentinel for the deterministic (no-shadowing) model, never a computed value
        if sigma == 0.0 {
            if mean_rx >= threshold {
                1.0
            } else {
                0.0
            }
        } else {
            gaussian::phi((mean_rx - threshold).value() / sigma)
        }
    }
}

/// Friis free-space reference loss at distance `d0` for frequency `f`:
/// `20·log10(4π·d0 / λ)`.
#[must_use]
pub fn reference_loss_db(frequency_hz: f64, d0: Meters) -> Db {
    let lambda = SPEED_OF_LIGHT / frequency_hz;
    Db::new(20.0 * (4.0 * std::f64::consts::PI * d0.value() / lambda).log10())
}

/// Log-distance path loss: reference loss at `d0` plus
/// `10·β·log10(d/d0)`. With β = 2 this is exactly free space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    /// Path-loss exponent β.
    pub beta: f64,
    /// Reference distance `d0`.
    pub d0: Meters,
    /// Loss already incurred at the reference distance.
    pub ref_loss: Db,
}

impl LogDistance {
    /// The paper's configuration: β as given, `d0` = 1 m, reference loss
    /// from Friis at 914 MHz.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not positive.
    #[must_use]
    pub fn new(beta: f64) -> Self {
        assert!(
            beta > 0.0,
            "path-loss exponent must be positive, got {beta}"
        );
        let d0 = Meters::new(1.0);
        LogDistance {
            beta,
            d0,
            ref_loss: reference_loss_db(DEFAULT_FREQUENCY_HZ, d0),
        }
    }

    /// Free space (β = 2).
    #[must_use]
    pub fn free_space() -> Self {
        LogDistance::new(2.0)
    }
}

impl PathLoss for LogDistance {
    fn mean_loss(&self, d: Meters) -> Db {
        // Inside the reference distance the model is not defined; clamp so
        // co-located nodes see the reference loss rather than a negative one.
        let ratio = (d / self.d0).max(1.0);
        self.ref_loss + Db::new(10.0 * self.beta * ratio.log10())
    }
}

/// Two-ray ground reflection: free space up to the crossover distance
/// `d_c = 4π·h_t·h_r/λ`, then fourth-power decay
/// `loss = 40·log10(d) − 10·log10(h_t²·h_r²)` — ns-2's default outdoor
/// large-scale model, provided for channel-model sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoRayGround {
    /// Transmitter antenna height, meters (ns-2 default 1.5).
    pub ht: f64,
    /// Receiver antenna height, meters (ns-2 default 1.5).
    pub hr: f64,
    /// Free-space component used below the crossover distance.
    pub near: LogDistance,
}

impl TwoRayGround {
    /// ns-2 defaults: 1.5 m antennas at 914 MHz.
    ///
    /// # Panics
    ///
    /// Panics if either antenna height is not positive.
    #[must_use]
    pub fn new(ht: f64, hr: f64) -> Self {
        assert!(ht > 0.0 && hr > 0.0, "antenna heights must be positive");
        TwoRayGround {
            ht,
            hr,
            near: LogDistance::free_space(),
        }
    }

    /// The crossover distance `4π·h_t·h_r/λ` where the ground reflection
    /// starts to dominate.
    #[must_use]
    pub fn crossover(&self) -> Meters {
        let lambda = SPEED_OF_LIGHT / DEFAULT_FREQUENCY_HZ;
        Meters::new(4.0 * std::f64::consts::PI * self.ht * self.hr / lambda)
    }
}

impl PathLoss for TwoRayGround {
    fn mean_loss(&self, d: Meters) -> Db {
        if d < self.crossover() {
            self.near.mean_loss(d)
        } else {
            let gains = (self.ht * self.ht * self.hr * self.hr).log10() * 10.0;
            Db::new(40.0 * d.value().max(1.0).log10() - gains)
        }
    }
}

/// The deterministic large-scale component a [`Shadowing`] model varies
/// around.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeanModel {
    /// Log-distance (the paper's choice, β = 2 = free space).
    LogDistance(LogDistance),
    /// Two-ray ground reflection (ns-2's default outdoor model).
    TwoRay(TwoRayGround),
}

impl PathLoss for MeanModel {
    fn mean_loss(&self, d: Meters) -> Db {
        match self {
            MeanModel::LogDistance(m) => m.mean_loss(d),
            MeanModel::TwoRay(m) => m.mean_loss(d),
        }
    }
}

/// The paper's shadowing model: a deterministic mean-loss model plus a
/// zero-mean Gaussian deviate of standard deviation `sigma_db`.
///
/// ```
/// use airguard_phy::pathloss::{PathLoss, Shadowing};
/// use airguard_phy::{Dbm, Meters};
///
/// let model = Shadowing::new(2.0, 1.0);
/// let tx = Dbm::new(24.5);
/// // Mean received power at 250 m equals the calibrated RX threshold, so
/// // delivery probability there is exactly one half.
/// let thresh = tx - model.mean_loss(Meters::new(250.0));
/// let p = model.prob_above(tx, Meters::new(250.0), thresh);
/// assert!((p - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shadowing {
    /// Deterministic large-scale component.
    pub mean: MeanModel,
    /// Shadowing standard deviation, dB.
    pub sigma_db: f64,
}

impl Shadowing {
    /// Creates the shadowing model used in the paper's simulations:
    /// exponent `beta` (the paper uses 2.0) and deviation `sigma_db`
    /// (the paper uses 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not positive or `sigma_db` is negative.
    #[must_use]
    pub fn new(beta: f64, sigma_db: f64) -> Self {
        assert!(
            sigma_db >= 0.0,
            "shadowing deviation must be non-negative, got {sigma_db}"
        );
        Shadowing {
            mean: MeanModel::LogDistance(LogDistance::new(beta)),
            sigma_db,
        }
    }

    /// Samples the loss given a precomputed `mean_loss(d)` — the hot-path
    /// variant of [`PathLoss::sample_loss`] with the deterministic
    /// (transcendental-heavy) mean hoisted out by the caller.
    ///
    /// Bit-identical to `sample_loss` for the same RNG state: both
    /// compute `mean − N(0, σ)` and consume exactly one Gaussian draw.
    pub fn sample_loss_from_mean<R: rand::Rng + ?Sized>(&self, mean: Db, rng: &mut R) -> Db {
        mean - Db::new(gaussian::normal(rng, 0.0, self.sigma_db))
    }

    /// Shadowing around a two-ray-ground mean (channel-model ablation).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative.
    #[must_use]
    pub fn two_ray(sigma_db: f64) -> Self {
        assert!(
            sigma_db >= 0.0,
            "shadowing deviation must be non-negative, got {sigma_db}"
        );
        Shadowing {
            mean: MeanModel::TwoRay(TwoRayGround::new(1.5, 1.5)),
            sigma_db,
        }
    }
}

impl PathLoss for Shadowing {
    fn mean_loss(&self, d: Meters) -> Db {
        self.mean.mean_loss(d)
    }

    fn sample_loss<R: rand::Rng + ?Sized>(&self, d: Meters, rng: &mut R) -> Db {
        // X_dB is *added* to the received power in the model equation, i.e.
        // subtracted from the loss.
        self.mean_loss(d) - Db::new(gaussian::normal(rng, 0.0, self.sigma_db))
    }

    fn sigma(&self) -> Db {
        Db::new(self.sigma_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_sim::MasterSeed;

    #[test]
    fn free_space_reference_loss_is_friis() {
        // 914 MHz → λ ≈ 0.328 m → 20·log10(4π/λ) ≈ 31.67 dB at 1 m.
        let l = reference_loss_db(DEFAULT_FREQUENCY_HZ, Meters::new(1.0));
        assert!((l.value() - 31.67).abs() < 0.05, "got {l}");
    }

    #[test]
    fn log_distance_slope_is_10_beta_per_decade() {
        let m = LogDistance::new(2.0);
        let l10 = m.mean_loss(Meters::new(10.0));
        let l100 = m.mean_loss(Meters::new(100.0));
        assert!(((l100 - l10).value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn loss_clamped_inside_reference_distance() {
        let m = LogDistance::new(2.0);
        assert_eq!(m.mean_loss(Meters::new(0.0)), m.mean_loss(Meters::new(1.0)));
    }

    #[test]
    fn deterministic_prob_is_step() {
        let m = LogDistance::new(2.0);
        let tx = Dbm::new(24.5);
        let thresh = tx - m.mean_loss(Meters::new(250.0));
        assert_eq!(m.prob_above(tx, Meters::new(200.0), thresh), 1.0);
        assert_eq!(m.prob_above(tx, Meters::new(300.0), thresh), 0.0);
    }

    #[test]
    fn shadowing_prob_at_calibrated_distance_is_half() {
        let m = Shadowing::new(2.0, 1.0);
        let tx = Dbm::new(24.5);
        let thresh = tx - m.mean_loss(Meters::new(550.0));
        let p = m.prob_above(tx, Meters::new(550.0), thresh);
        assert!((p - 0.5).abs() < 1e-9);
        // Nearer: higher probability; farther: lower.
        assert!(m.prob_above(tx, Meters::new(500.0), thresh) > 0.7);
        assert!(m.prob_above(tx, Meters::new(650.0), thresh) < 0.15);
    }

    #[test]
    fn sampled_loss_matches_analytic_probability() {
        let m = Shadowing::new(2.0, 1.0);
        let tx = Dbm::new(24.5);
        let d = Meters::new(500.0);
        let thresh = tx - m.mean_loss(Meters::new(550.0));
        let analytic = m.prob_above(tx, d, thresh);
        let mut rng = MasterSeed::new(7).stream("pl-test", 0);
        let n = 50_000;
        let hits = (0..n)
            .filter(|_| tx - m.sample_loss(d, rng.rng()) >= thresh)
            .count() as f64
            / n as f64;
        assert!(
            (hits - analytic).abs() < 0.01,
            "sampled {hits}, analytic {analytic}"
        );
    }

    #[test]
    fn hoisted_mean_sampling_is_bit_identical() {
        let s = Shadowing::new(2.0, 1.0);
        let d = Meters::new(317.0);
        // Identically seeded streams: the two sampling paths must consume
        // the same draws and produce the same floats.
        let mut a = MasterSeed::new(9).stream("pl-test", 3);
        let mut b = MasterSeed::new(9).stream("pl-test", 3);
        let mean = s.mean_loss(d);
        for _ in 0..1_000 {
            assert_eq!(
                s.sample_loss(d, a.rng()),
                s.sample_loss_from_mean(mean, b.rng())
            );
        }
    }

    #[test]
    fn zero_sigma_shadowing_degenerates_to_log_distance() {
        let s = Shadowing::new(2.0, 0.0);
        let mut rng = MasterSeed::new(1).stream("pl-test", 1);
        let d = Meters::new(123.0);
        assert_eq!(s.sample_loss(d, rng.rng()), s.mean_loss(d));
    }

    #[test]
    fn two_ray_crossover_is_86m_at_defaults() {
        let m = TwoRayGround::new(1.5, 1.5);
        assert!(
            (m.crossover().value() - 86.14).abs() < 0.5,
            "{}",
            m.crossover()
        );
    }

    #[test]
    fn two_ray_is_continuousish_and_steeper_far_out() {
        let m = TwoRayGround::new(1.5, 1.5);
        let at_cross = m.mean_loss(m.crossover());
        let just_before = m.mean_loss(Meters::new(m.crossover().value() - 1.0));
        assert!(
            (at_cross - just_before).value().abs() < 1.0,
            "jump at crossover"
        );
        // Beyond crossover the slope is 40 dB/decade vs 20 for free space.
        let l100 = m.mean_loss(Meters::new(100.0));
        let l1000 = m.mean_loss(Meters::new(1000.0));
        assert!(((l1000 - l100).value() - 40.0).abs() < 0.5);
    }

    #[test]
    fn shadowed_two_ray_samples_around_its_mean() {
        let s = Shadowing::two_ray(1.0);
        let d = Meters::new(300.0);
        let mut rng = MasterSeed::new(4).stream("pl-test", 2);
        let n = 20_000;
        let mean_sample: f64 = (0..n)
            .map(|_| s.sample_loss(d, rng.rng()).value())
            .sum::<f64>()
            / f64::from(n);
        assert!((mean_sample - s.mean_loss(d).value()).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn two_ray_rejects_zero_height() {
        let _ = TwoRayGround::new(0.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_beta() {
        let _ = LogDistance::new(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        let _ = Shadowing::new(2.0, -0.5);
    }
}
