//! Per-node reception tracking: carrier busy/idle edges, collisions, and
//! capture.
//!
//! Each node owns one [`RxTracker`]. The simulation runner feeds it the
//! arrival and departure of every transmission the node senses (as sampled
//! by [`crate::Medium`]) plus the node's own transmit activity, and the
//! tracker answers the three questions a MAC asks of its PHY:
//!
//! 1. *Is the channel busy?* — any sensed energy, or own transmission.
//! 2. *Did this frame decode?* — ns-2 capture semantics: the first
//!    receivable arrival locks the receiver; it survives an overlapping
//!    arrival only if it is at least the capture margin stronger; a later
//!    frame never steals the lock; transmitting while receiving garbles.
//! 3. *When did busy/idle edges happen?* — returned from each state
//!    change, so the MAC can freeze and resume backoff counting.

use airguard_sim::trace::{ObsEvent, Trace};
use airguard_sim::{NodeId, SimTime};

use crate::medium::TransmissionId;
use crate::units::{Db, Dbm};

/// A change in the perceived channel state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyEdge {
    /// The channel just went from idle to busy.
    BecameBusy,
    /// The channel just went from busy to idle.
    BecameIdle,
}

/// The fate of a receivable frame at its departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// The frame was received intact and should be handed to the MAC.
    Decoded,
    /// The frame was garbled by a collision or by local transmission.
    Garbled,
}

#[derive(Debug, Clone, Copy)]
struct Arrival {
    id: TransmissionId,
    power: Dbm,
}

#[derive(Debug, Clone, Copy)]
struct Locked {
    id: TransmissionId,
    power: Dbm,
    clean: bool,
}

/// Tracks everything one node's radio front-end currently hears.
#[derive(Debug)]
pub struct RxTracker {
    capture: Db,
    arrivals: Vec<Arrival>,
    locked: Option<Locked>,
    transmitting: bool,
    trace: Trace,
    node: NodeId,
}

impl RxTracker {
    /// Creates a tracker with the given capture margin.
    #[must_use]
    pub fn new(capture: Db) -> Self {
        RxTracker {
            capture,
            arrivals: Vec::new(),
            locked: None,
            transmitting: false,
            trace: Trace::new(),
            node: NodeId::new(0),
        }
    }

    /// Attaches a trace sink; `node` identifies this tracker's owner in
    /// the typed event stream.
    pub fn set_trace(&mut self, trace: Trace, node: NodeId) {
        self.trace = trace;
        self.node = node;
    }

    /// True when the channel appears busy to this node (own transmission
    /// counts as busy: the radio is half-duplex).
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.transmitting || !self.arrivals.is_empty()
    }

    /// True while the node's own transmitter is active.
    #[must_use]
    pub fn is_transmitting(&self) -> bool {
        self.transmitting
    }

    /// Registers the arrival of a sensed transmission.
    ///
    /// `receivable` marks frames above the receive threshold; only those
    /// can lock the receiver and eventually decode.
    pub fn on_arrival(
        &mut self,
        now: SimTime,
        id: TransmissionId,
        power: Dbm,
        receivable: bool,
    ) -> Option<BusyEdge> {
        let was_busy = self.is_busy();
        if receivable && !self.transmitting {
            match &mut self.locked {
                Some(locked) => {
                    // ns-2 capture: the in-progress frame survives only if it
                    // is `capture` dB stronger than the newcomer. The
                    // newcomer is interference either way.
                    if locked.power - power < self.capture {
                        locked.clean = false;
                        // Typed emission: a disabled sink rejects this
                        // with one relaxed load, and the event itself is
                        // three plain integers — no allocation either way.
                        self.trace.emit(
                            now,
                            self.node,
                            ObsEvent::Collision {
                                victim_tx: locked.id.value(),
                                culprit_tx: Some(id.value()),
                            },
                        );
                    }
                }
                None => {
                    // A fresh lock is clean only if it captures over all
                    // energy already on the air.
                    let clean = self
                        .arrivals
                        .iter()
                        .all(|g| power - g.power >= self.capture);
                    self.locked = Some(Locked { id, power, clean });
                }
            }
        }
        self.arrivals.push(Arrival { id, power });
        (!was_busy).then_some(BusyEdge::BecameBusy)
    }

    /// Registers the end of a previously arrived transmission.
    ///
    /// Returns the busy/idle edge (if any) and, when `id` was the locked
    /// reception, its decode outcome.
    pub fn on_departure(
        &mut self,
        now: SimTime,
        id: TransmissionId,
    ) -> (Option<BusyEdge>, Option<DecodeOutcome>) {
        let before = self.arrivals.len();
        self.arrivals.retain(|a| a.id != id);
        debug_assert!(
            self.arrivals.len() < before,
            "departure of unknown transmission {id:?}"
        );

        let decode = match self.locked {
            Some(locked) if locked.id == id => {
                self.locked = None;
                let outcome = if locked.clean {
                    DecodeOutcome::Decoded
                } else {
                    DecodeOutcome::Garbled
                };
                // Every decoded frame passes through here: the typed
                // event is allocation-free, so no enabled guard needed.
                self.trace.emit(
                    now,
                    self.node,
                    ObsEvent::Decode {
                        tx: id.value(),
                        clean: locked.clean,
                    },
                );
                Some(outcome)
            }
            _ => None,
        };

        let edge = (!self.is_busy()).then_some(BusyEdge::BecameIdle);
        (edge, decode)
    }

    /// Marks the start of the node's own transmission. Any in-progress
    /// reception is garbled (half-duplex radio).
    pub fn on_self_tx_start(&mut self, now: SimTime) -> Option<BusyEdge> {
        let was_busy = self.is_busy();
        self.transmitting = true;
        if let Some(locked) = &mut self.locked {
            if locked.clean {
                locked.clean = false;
                self.trace.emit(
                    now,
                    self.node,
                    ObsEvent::Collision {
                        victim_tx: locked.id.value(),
                        // No culprit transmission: the node's own
                        // transmitter garbled the reception.
                        culprit_tx: None,
                    },
                );
            }
        }
        (!was_busy).then_some(BusyEdge::BecameBusy)
    }

    /// Marks the end of the node's own transmission.
    pub fn on_self_tx_end(&mut self, _now: SimTime) -> Option<BusyEdge> {
        debug_assert!(self.transmitting, "self-tx end without start");
        self.transmitting = false;
        (!self.is_busy()).then_some(BusyEdge::BecameIdle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn tracker() -> RxTracker {
        RxTracker::new(Db::new(10.0))
    }

    fn tid(v: u64) -> TransmissionId {
        // TransmissionId has no public constructor by design; mint ids
        // through a throwaway medium instead.
        use crate::{Medium, PhyConfig, Position};
        use airguard_sim::{MasterSeed, NodeId};
        let mut m = Medium::new(
            PhyConfig::deterministic(),
            vec![Position::new(0.0, 0.0)],
            MasterSeed::new(0).stream("tid", v),
        );
        let mut id = m.start_tx(NodeId::new(0)).id;
        for _ in 0..v {
            id = m.start_tx(NodeId::new(0)).id;
        }
        id
    }

    #[test]
    fn single_clean_reception() {
        let mut t = tracker();
        let id = tid(0);
        assert_eq!(
            t.on_arrival(T0, id, Dbm::new(-60.0), true),
            Some(BusyEdge::BecameBusy)
        );
        assert!(t.is_busy());
        let (edge, decode) = t.on_departure(T0, id);
        assert_eq!(edge, Some(BusyEdge::BecameIdle));
        assert_eq!(decode, Some(DecodeOutcome::Decoded));
        assert!(!t.is_busy());
    }

    #[test]
    fn sensed_only_energy_gives_busy_but_no_decode() {
        let mut t = tracker();
        let id = tid(0);
        assert_eq!(
            t.on_arrival(T0, id, Dbm::new(-80.0), false),
            Some(BusyEdge::BecameBusy)
        );
        let (edge, decode) = t.on_departure(T0, id);
        assert_eq!(edge, Some(BusyEdge::BecameIdle));
        assert_eq!(decode, None);
    }

    #[test]
    fn equal_power_overlap_garbles_first_frame() {
        let mut t = tracker();
        let (a, b) = (tid(0), tid(1));
        t.on_arrival(T0, a, Dbm::new(-60.0), true);
        assert_eq!(t.on_arrival(T0, b, Dbm::new(-60.0), true), None);
        let (_, decode_b) = t.on_departure(T0, b);
        assert_eq!(decode_b, None, "second frame never locked");
        let (edge, decode_a) = t.on_departure(T0, a);
        assert_eq!(decode_a, Some(DecodeOutcome::Garbled));
        assert_eq!(edge, Some(BusyEdge::BecameIdle));
    }

    #[test]
    fn strong_first_frame_captures_over_weak_interferer() {
        let mut t = tracker();
        let (a, b) = (tid(0), tid(1));
        t.on_arrival(T0, a, Dbm::new(-50.0), true);
        t.on_arrival(T0, b, Dbm::new(-61.0), true); // 11 dB below: captured over
        t.on_departure(T0, b);
        let (_, decode_a) = t.on_departure(T0, a);
        assert_eq!(decode_a, Some(DecodeOutcome::Decoded));
    }

    #[test]
    fn margin_is_strict_at_capture_threshold() {
        let mut t = tracker();
        let (a, b) = (tid(0), tid(1));
        t.on_arrival(T0, a, Dbm::new(-50.0), true);
        t.on_arrival(T0, b, Dbm::new(-60.0), true); // exactly 10 dB: survives
        let (_, decode_a) = t.on_departure(T0, a);
        assert_eq!(decode_a, Some(DecodeOutcome::Decoded));
    }

    #[test]
    fn later_strong_frame_does_not_steal_lock() {
        let mut t = tracker();
        let (a, b) = (tid(0), tid(1));
        t.on_arrival(T0, a, Dbm::new(-70.0), true);
        t.on_arrival(T0, b, Dbm::new(-40.0), true); // much stronger, still no lock
        let (_, decode_a) = t.on_departure(T0, a);
        assert_eq!(decode_a, Some(DecodeOutcome::Garbled));
        let (_, decode_b) = t.on_departure(T0, b);
        assert_eq!(decode_b, None);
    }

    #[test]
    fn weak_preexisting_energy_blocks_clean_lock() {
        let mut t = tracker();
        let (a, b) = (tid(0), tid(1));
        t.on_arrival(T0, a, Dbm::new(-66.0), false); // sensed-only interference
        t.on_arrival(T0, b, Dbm::new(-60.0), true); // only 6 dB above: not captured
        let (_, decode_b) = t.on_departure(T0, b);
        assert_eq!(decode_b, Some(DecodeOutcome::Garbled));
    }

    #[test]
    fn lock_over_preexisting_energy_with_margin() {
        let mut t = tracker();
        let (a, b) = (tid(0), tid(1));
        t.on_arrival(T0, a, Dbm::new(-75.0), false);
        t.on_arrival(T0, b, Dbm::new(-60.0), true); // 15 dB above: clean
        let (_, decode_b) = t.on_departure(T0, b);
        assert_eq!(decode_b, Some(DecodeOutcome::Decoded));
    }

    #[test]
    fn self_tx_garbles_in_progress_reception() {
        let mut t = tracker();
        let id = tid(0);
        t.on_arrival(T0, id, Dbm::new(-60.0), true);
        assert_eq!(t.on_self_tx_start(T0), None, "already busy from rx");
        let (_, decode) = t.on_departure(T0, id);
        assert_eq!(decode, Some(DecodeOutcome::Garbled));
        assert!(t.is_busy(), "still transmitting");
        assert_eq!(t.on_self_tx_end(T0), Some(BusyEdge::BecameIdle));
    }

    #[test]
    fn frames_arriving_during_self_tx_never_lock() {
        let mut t = tracker();
        let id = tid(0);
        assert_eq!(t.on_self_tx_start(T0), Some(BusyEdge::BecameBusy));
        t.on_arrival(T0, id, Dbm::new(-40.0), true);
        t.on_self_tx_end(T0);
        let (edge, decode) = t.on_departure(T0, id);
        assert_eq!(decode, None);
        assert_eq!(edge, Some(BusyEdge::BecameIdle));
    }

    #[test]
    fn busy_edges_only_on_transitions() {
        let mut t = tracker();
        let (a, b) = (tid(0), tid(1));
        assert!(t.on_arrival(T0, a, Dbm::new(-60.0), false).is_some());
        assert!(t.on_arrival(T0, b, Dbm::new(-60.0), false).is_none());
        let (edge_a, _) = t.on_departure(T0, a);
        assert_eq!(edge_a, None, "b still on the air");
        let (edge_b, _) = t.on_departure(T0, b);
        assert_eq!(edge_b, Some(BusyEdge::BecameIdle));
    }

    #[test]
    fn tracker_reusable_after_idle() {
        let mut t = tracker();
        for round in 0..3 {
            let id = tid(round);
            assert!(t.on_arrival(T0, id, Dbm::new(-60.0), true).is_some());
            let (_, decode) = t.on_departure(T0, id);
            assert_eq!(decode, Some(DecodeOutcome::Decoded), "round {round}");
        }
    }
}
