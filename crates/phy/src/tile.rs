//! Tile-partitioned spatial indexing for large topologies.
//!
//! The dense [`crate::Medium`] link table is O(n²) in both memory and
//! per-transmission sampling cost — fine for the paper's ≤ 40-node
//! figures, hopeless at 10k+ nodes. This module provides the spatial
//! substrate that replaces it for large topologies:
//!
//! * [`interference_cutoff`] — the finite radius beyond which a
//!   transmission is provably silent under *clamped* shadowing (the
//!   spatial sampling mode clamps the Gaussian deviate to ±6σ, so the
//!   best-case received power at distance d is bounded and a hard
//!   cutoff exists);
//! * [`TileIndex`] — a uniform grid of square tiles with edge length
//!   equal to the cutoff radius, plus per-node CSR candidate lists
//!   (every other node within the cutoff, ascending by node id — the
//!   same iteration order as the dense path, so listener outcomes come
//!   back in the identical order).
//!
//! Determinism: the index is a pure function of the positions and the
//! cutoff. Candidate lists are sorted, never hash-ordered, and the
//! brute-force and tile-accelerated builders produce identical lists —
//! the property test in `crates/phy/tests/tile_equivalence.rs` holds
//! the two paths together.

use crate::config::PhyConfig;
use crate::pathloss::PathLoss;
use crate::units::{Db, Meters, Position};

/// The spatial sampling mode clamps each shadowing deviate to this many
/// standard deviations, which is what makes a finite interference
/// cutoff exist at all. ±6σ truncates less than 2e-9 of the
/// distribution's mass — far below anything the calibration tests can
/// resolve.
pub const CLAMP_SIGMAS: f64 = 6.0;

/// Safety margin added on top of the ±6σ bound when computing the
/// cutoff, in dB. This absorbs the ≤ 1 dB discontinuity of the
/// two-ray-ground mean model at its crossover distance, so the cutoff
/// search can treat "silent at d" as monotone in d.
const CUTOFF_MARGIN_DB: f64 = 1.0;

/// Hard ceiling for the cutoff search, in meters. No supported
/// configuration gets anywhere near this; it only bounds the search
/// when a pathological config never goes silent.
const CUTOFF_CEILING_M: f64 = 1.0e7;

/// The distance beyond which a transmission can never be sensed under
/// clamped (±[`CLAMP_SIGMAS`]σ) shadowing: the smallest `d` such that
/// `tx_power − mean_loss(d) + 6σ + margin < cs_threshold`.
///
/// For the paper's default radio (σ = 1 dB, carrier sense 50 % at
/// 550 m) this lands near 1.1 km; for a deterministic radio (σ = 0) it
/// is the 550 m sense range plus the margin.
#[must_use]
pub fn interference_cutoff(cfg: &PhyConfig) -> Meters {
    let headroom = Db::new(CLAMP_SIGMAS * cfg.model.sigma_db + CUTOFF_MARGIN_DB);
    let silent =
        |d: f64| cfg.tx_power - cfg.model.mean_loss(Meters::new(d)) + headroom < cfg.cs_threshold;
    // Exponential search for a silent distance, then bisect. The margin
    // makes `silent` monotone despite the two-ray crossover jump.
    let mut hi = 1.0;
    while !silent(hi) {
        hi *= 2.0;
        if hi >= CUTOFF_CEILING_M {
            return Meters::new(CUTOFF_CEILING_M);
        }
    }
    let mut lo = hi / 2.0;
    while hi - lo > 0.25 {
        let mid = 0.5 * (lo + hi);
        if silent(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Meters::new(hi)
}

/// A uniform tile grid over the node positions with per-node candidate
/// lists in CSR layout.
///
/// Tile edge length equals the cutoff radius, so every node's
/// candidates live in its own tile or one of the eight surrounding
/// tiles; the 3×3 neighborhood scan is then filtered by exact distance.
#[derive(Debug, Clone)]
pub struct TileIndex {
    cutoff: Meters,
    cols: usize,
    rows: usize,
    /// CSR row starts: node `i`'s candidates are
    /// `candidates[starts[i]..starts[i + 1]]`.
    starts: Vec<usize>,
    /// Candidate node indices, ascending within each row.
    candidates: Vec<u32>,
}

impl TileIndex {
    /// Builds the index over `positions` with the given cutoff radius,
    /// using the tile grid to avoid the O(n²) pair scan.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is not positive or more than `u32::MAX`
    /// positions are given.
    #[must_use]
    pub fn build(positions: &[Position], cutoff: Meters) -> Self {
        assert!(cutoff.value() > 0.0, "tile cutoff must be positive");
        let n = positions.len();
        assert!(u32::try_from(n).is_ok(), "more than u32::MAX nodes");
        if n == 0 {
            return TileIndex {
                cutoff,
                cols: 0,
                rows: 0,
                starts: vec![0],
                candidates: Vec::new(),
            };
        }

        // Grid geometry from the bounding box of the placement.
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let tile = cutoff.value();
        let cols = (((max_x - min_x) / tile).floor() as usize).saturating_add(1);
        let rows = (((max_y - min_y) / tile).floor() as usize).saturating_add(1);
        let cell_of = |p: &Position| -> (usize, usize) {
            let cx = (((p.x - min_x) / tile).floor() as usize).min(cols - 1);
            let cy = (((p.y - min_y) / tile).floor() as usize).min(rows - 1);
            (cx, cy)
        };

        // Bucket nodes by tile (counting sort keeps buckets id-ordered).
        let mut tile_counts = vec![0usize; cols * rows];
        for p in positions {
            let (cx, cy) = cell_of(p);
            tile_counts[cy * cols + cx] += 1;
        }
        let mut tile_starts = Vec::with_capacity(cols * rows + 1);
        let mut acc = 0usize;
        tile_starts.push(0);
        for &c in &tile_counts {
            acc += c;
            tile_starts.push(acc);
        }
        let mut tile_fill = tile_starts.clone();
        let mut tile_members = vec![0u32; n];
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            let slot = tile_fill[cy * cols + cx];
            tile_members[slot] = i as u32;
            tile_fill[cy * cols + cx] += 1;
        }

        // CSR candidate lists: 3×3 neighborhood, exact distance filter,
        // sorted ascending so iteration matches the dense path.
        let mut starts = Vec::with_capacity(n + 1);
        let mut candidates = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        starts.push(0);
        for (i, p) in positions.iter().enumerate() {
            scratch.clear();
            let (cx, cy) = cell_of(p);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= cols as i64 || ny >= rows as i64 {
                        continue;
                    }
                    let t = (ny as usize) * cols + nx as usize;
                    for &j in &tile_members[tile_starts[t]..tile_starts[t + 1]] {
                        if j as usize == i {
                            continue;
                        }
                        if p.distance_to(positions[j as usize]) <= cutoff {
                            scratch.push(j);
                        }
                    }
                }
            }
            scratch.sort_unstable();
            candidates.extend_from_slice(&scratch);
            starts.push(candidates.len());
        }
        TileIndex {
            cutoff,
            cols,
            rows,
            starts,
            candidates,
        }
    }

    /// Builds the same index by brute-force O(n²) pair scan — the
    /// reference implementation the tile path is equivalence-tested
    /// against, and the natural choice for small n.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is not positive or more than `u32::MAX`
    /// positions are given.
    #[must_use]
    pub fn build_dense(positions: &[Position], cutoff: Meters) -> Self {
        assert!(cutoff.value() > 0.0, "tile cutoff must be positive");
        let n = positions.len();
        assert!(u32::try_from(n).is_ok(), "more than u32::MAX nodes");
        let mut starts = Vec::with_capacity(n + 1);
        let mut candidates = Vec::new();
        starts.push(0);
        for (i, p) in positions.iter().enumerate() {
            for (j, q) in positions.iter().enumerate() {
                if i != j && p.distance_to(*q) <= cutoff {
                    candidates.push(j as u32);
                }
            }
            starts.push(candidates.len());
        }
        TileIndex {
            cutoff,
            cols: 1,
            rows: 1,
            starts,
            candidates,
        }
    }

    /// The cutoff radius the index was built with.
    #[must_use]
    pub fn cutoff(&self) -> Meters {
        self.cutoff
    }

    /// Number of nodes in the index.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Grid shape `(cols, rows)` (1×1 for a dense-built index).
    #[must_use]
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Node `i`'s candidate listeners, ascending by node index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn candidates(&self, i: usize) -> &[u32] {
        &self.candidates[self.starts[i]..self.starts[i + 1]]
    }

    /// Node `i`'s CSR row: the offset of its first candidate edge (for
    /// indexing parallel per-edge arrays) plus the candidate slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> (usize, &[u32]) {
        let start = self.starts[i];
        (start, &self.candidates[start..self.starts[i + 1]])
    }

    /// Total number of directed candidate edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.candidates.len()
    }
}

/// splitmix64, the standard 64-bit finalizer — used to mix per-pair
/// sampling keys so each (transmission, listener) pair gets an
/// independent, order-free deviate.
#[must_use]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the sampling key for one (transmission, listener) pair.
///
/// The key depends only on the medium's base key, the transmitter's
/// *global* id, the transmitter's own transmission count, and the
/// listener's global id — never on how many other pairs were sampled —
/// so pruning distant listeners (or simulating a spatial component in
/// isolation) cannot shift any other pair's deviate.
#[must_use]
pub(crate) fn pair_key(base: u64, tx: u32, tx_count: u64, rx: u32) -> u64 {
    let pair = (u64::from(tx) << 32) | u64::from(rx);
    splitmix64(base ^ splitmix64(pair) ^ splitmix64(tx_count).rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_positions(side: usize, spacing: f64) -> Vec<Position> {
        let mut out = Vec::new();
        for r in 0..side {
            for c in 0..side {
                out.push(Position::new(c as f64 * spacing, r as f64 * spacing));
            }
        }
        out
    }

    #[test]
    fn cutoff_covers_the_sense_range_with_margin() {
        let cut = interference_cutoff(&PhyConfig::paper_default());
        assert!(
            cut.value() > 550.0 && cut.value() < 2_000.0,
            "paper-default cutoff was {cut}"
        );
        let det = interference_cutoff(&PhyConfig::deterministic());
        assert!(
            det.value() > 550.0 && det.value() < 700.0,
            "deterministic cutoff was {det}"
        );
        // More shadowing variance ⇒ larger cutoff.
        assert!(cut > det);
    }

    #[test]
    fn tile_and_dense_builders_agree() {
        let positions = grid_positions(13, 310.0);
        let cutoff = Meters::new(600.0);
        let tiled = TileIndex::build(&positions, cutoff);
        let dense = TileIndex::build_dense(&positions, cutoff);
        assert_eq!(tiled.node_count(), dense.node_count());
        for i in 0..positions.len() {
            assert_eq!(tiled.candidates(i), dense.candidates(i), "node {i}");
        }
    }

    #[test]
    fn candidates_are_sorted_and_self_free() {
        let positions = grid_positions(9, 200.0);
        let index = TileIndex::build(&positions, Meters::new(650.0));
        for i in 0..positions.len() {
            let cands = index.candidates(i);
            assert!(cands.windows(2).all(|w| w[0] < w[1]), "unsorted at {i}");
            assert!(!cands.contains(&(i as u32)), "self-candidate at {i}");
        }
    }

    #[test]
    fn far_apart_clusters_have_no_cross_edges() {
        let mut positions = grid_positions(3, 100.0);
        for p in grid_positions(3, 100.0) {
            positions.push(Position::new(p.x + 10_000.0, p.y));
        }
        let index = TileIndex::build(&positions, Meters::new(700.0));
        for i in 0..9 {
            assert!(index.candidates(i).iter().all(|&j| j < 9));
        }
        for i in 9..18 {
            assert!(index.candidates(i).iter().all(|&j| j >= 9));
        }
    }

    #[test]
    fn empty_and_singleton_indexes_are_fine() {
        let empty = TileIndex::build(&[], Meters::new(100.0));
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.edge_count(), 0);
        let one = TileIndex::build(&[Position::new(3.0, 4.0)], Meters::new(100.0));
        assert_eq!(one.node_count(), 1);
        assert!(one.candidates(0).is_empty());
    }

    #[test]
    fn pair_keys_are_order_free_and_distinct() {
        let k = pair_key(99, 1, 0, 2);
        assert_eq!(k, pair_key(99, 1, 0, 2), "stable");
        assert_ne!(k, pair_key(99, 1, 1, 2), "next transmission differs");
        assert_ne!(k, pair_key(99, 1, 0, 3), "other listener differs");
        assert_ne!(k, pair_key(99, 2, 0, 1), "direction matters");
    }
}
