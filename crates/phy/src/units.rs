//! Physical-quantity newtypes.
//!
//! Power levels, power ratios, and distances are all `f64` underneath but
//! deliberately incompatible at the type level: adding two absolute power
//! levels, or comparing a distance with a power, is a compile error.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// An absolute power level in dBm (decibels relative to 1 mW).
///
/// ```
/// use airguard_phy::{Db, Dbm};
///
/// let tx = Dbm::new(24.5);
/// let after_loss = tx - Db::new(90.0);
/// assert!((after_loss.value() - -65.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Dbm(f64);

impl Dbm {
    /// Wraps a raw dBm value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — NaN power levels poison threshold
    /// comparisons silently.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "power level must not be NaN");
        Dbm(value)
    }

    /// The raw dBm value.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts linear milliwatts to dBm.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is not strictly positive.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(mw > 0.0, "power in milliwatts must be positive, got {mw}");
        Dbm(10.0 * mw.log10())
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}dBm", self.0)
    }
}

/// A power *ratio* in decibels: the difference of two [`Dbm`] levels, a
/// path loss, or a capture margin.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Db(f64);

impl Db {
    /// The zero ratio (equal powers).
    pub const ZERO: Db = Db(0.0);

    /// Wraps a raw dB value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "power ratio must not be NaN");
        Db(value)
    }

    /// The raw dB value.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}dB", self.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

/// A distance in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Meters(f64);

impl Meters {
    /// Wraps a raw distance.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(
            value >= 0.0 && !value.is_nan(),
            "distance must be non-negative, got {value}"
        );
        Meters(value)
    }

    /// The raw distance in meters.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}m", self.0)
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    fn mul(self, rhs: f64) -> Meters {
        Meters::new(self.0 * rhs)
    }
}

impl Div<Meters> for Meters {
    type Output = f64;
    fn div(self, rhs: Meters) -> f64 {
        self.0 / rhs.0
    }
}

/// A position on the simulation plane, in meters.
///
/// ```
/// use airguard_phy::Position;
///
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b).value(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Position {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position from planar coordinates in meters.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    #[must_use]
    pub fn distance_to(self, other: Position) -> Meters {
        Meters::new(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }

    /// The position at `radius` meters from `self` in direction
    /// `angle_rad` (radians, counterclockwise from +x).
    #[must_use]
    pub fn offset_polar(self, radius: f64, angle_rad: f64) -> Position {
        Position::new(
            self.x + radius * angle_rad.cos(),
            self.y + radius * angle_rad.sin(),
        )
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_mw_roundtrip() {
        let p = Dbm::new(24.5);
        let back = Dbm::from_milliwatts(p.to_milliwatts());
        assert!((p.value() - back.value()).abs() < 1e-9);
        assert!((Dbm::new(0.0).to_milliwatts() - 1.0).abs() < 1e-12);
        assert!((Dbm::new(30.0).to_milliwatts() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_db_arithmetic() {
        let a = Dbm::new(-60.0);
        let b = Dbm::new(-70.0);
        assert_eq!(a - b, Db::new(10.0));
        assert_eq!(b + Db::new(10.0), a);
        assert_eq!(-(a - b), Db::new(-10.0));
        assert_eq!(Db::new(3.0) + Db::new(4.0), Db::new(7.0));
        assert_eq!(Db::new(3.0) - Db::new(4.0), Db::new(-1.0));
    }

    #[test]
    fn dbm_comparisons() {
        assert!(Dbm::new(-60.0) > Dbm::new(-70.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn dbm_rejects_nan() {
        let _ = Dbm::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn from_milliwatts_rejects_zero() {
        let _ = Dbm::from_milliwatts(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn meters_rejects_negative() {
        let _ = Meters::new(-1.0);
    }

    #[test]
    fn meters_arithmetic() {
        assert_eq!(Meters::new(2.0) * 3.0, Meters::new(6.0));
        assert!((Meters::new(500.0) / Meters::new(250.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn position_distance_and_polar() {
        let o = Position::new(0.0, 0.0);
        let p = o.offset_polar(150.0, std::f64::consts::FRAC_PI_2);
        assert!((p.x).abs() < 1e-9);
        assert!((p.y - 150.0).abs() < 1e-9);
        assert!((o.distance_to(p).value() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(format!("{}", Dbm::new(-64.5)), "-64.50dBm");
        assert_eq!(format!("{}", Db::new(10.0)), "10.00dB");
        assert_eq!(format!("{}", Meters::new(250.0)), "250.0m");
        assert_eq!(format!("{}", Position::new(1.0, 2.0)), "(1.0, 2.0)");
    }
}
