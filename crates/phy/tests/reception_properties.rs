//! Property tests of the reception tracker: arbitrary interleavings of
//! arrivals, departures, and self-transmissions must keep the busy/idle
//! edge stream well-formed and decode outcomes consistent.

use airguard_phy::reception::{BusyEdge, DecodeOutcome, RxTracker};
use airguard_phy::{Db, Dbm, Medium, PhyConfig, Position, TransmissionId};
use airguard_sim::{MasterSeed, NodeId, SimTime};
use proptest::prelude::*;

/// Mint `n` distinct transmission ids through a throwaway medium (the
/// constructor is deliberately private outside the crate).
fn mint_ids(n: usize) -> Vec<TransmissionId> {
    let mut medium = Medium::new(
        PhyConfig::deterministic(),
        vec![Position::new(0.0, 0.0)],
        MasterSeed::new(0).stream("ids", 0),
    );
    (0..n).map(|_| medium.start_tx(NodeId::new(0)).id).collect()
}

#[derive(Debug, Clone)]
enum Op {
    Arrive {
        slot: usize,
        power: f64,
        receivable: bool,
    },
    Depart {
        slot: usize,
    },
    SelfTxStart,
    SelfTxEnd,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8, -90.0f64..-40.0, any::<bool>()).prop_map(|(slot, power, receivable)| {
            Op::Arrive {
                slot,
                power,
                receivable,
            }
        }),
        (0usize..8).prop_map(|slot| Op::Depart { slot }),
        Just(Op::SelfTxStart),
        Just(Op::SelfTxEnd),
    ]
}

proptest! {
    #[test]
    fn edges_alternate_and_state_stays_consistent(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let ids = mint_ids(8);
        let mut tracker = RxTracker::new(Db::new(10.0));
        let mut in_flight = [false; 8];
        let mut transmitting = false;
        let mut last_edge: Option<BusyEdge> = None;
        let t = SimTime::from_micros(1);

        for op in ops {
            let edge = match op {
                Op::Arrive { slot, power, receivable } => {
                    if in_flight[slot] {
                        continue; // already on the air
                    }
                    in_flight[slot] = true;
                    tracker.on_arrival(t, ids[slot], Dbm::new(power), receivable)
                }
                Op::Depart { slot } => {
                    if !in_flight[slot] {
                        continue;
                    }
                    in_flight[slot] = false;
                    let (edge, decode) = tracker.on_departure(t, ids[slot]);
                    // Decode outcomes are only Decoded/Garbled, never for
                    // a currently-transmitting node's own id.
                    if let Some(outcome) = decode {
                        prop_assert!(matches!(
                            outcome,
                            DecodeOutcome::Decoded | DecodeOutcome::Garbled
                        ));
                    }
                    edge
                }
                Op::SelfTxStart => {
                    if transmitting {
                        continue;
                    }
                    transmitting = true;
                    tracker.on_self_tx_start(t)
                }
                Op::SelfTxEnd => {
                    if !transmitting {
                        continue;
                    }
                    transmitting = false;
                    tracker.on_self_tx_end(t)
                }
            };
            // Edges must strictly alternate busy/idle.
            if let Some(e) = edge {
                if let Some(prev) = last_edge {
                    prop_assert_ne!(prev, e, "two identical edges in a row");
                }
                last_edge = Some(e);
            }
            // The tracker's busy flag must match the model.
            let expect_busy = transmitting || in_flight.iter().any(|&f| f);
            prop_assert_eq!(tracker.is_busy(), expect_busy);
        }
    }

    #[test]
    fn lone_receivable_frames_always_decode(
        power in -90.0f64..-40.0,
        n in 1usize..6,
    ) {
        let ids = mint_ids(n);
        let mut tracker = RxTracker::new(Db::new(10.0));
        let t = SimTime::from_micros(1);
        for id in ids {
            tracker.on_arrival(t, id, Dbm::new(power), true);
            let (_, decode) = tracker.on_departure(t, id);
            prop_assert_eq!(decode, Some(DecodeOutcome::Decoded));
        }
    }

    #[test]
    fn overlapping_equal_power_frames_never_both_decode(
        power in -90.0f64..-40.0,
    ) {
        let ids = mint_ids(2);
        let mut tracker = RxTracker::new(Db::new(10.0));
        let t = SimTime::from_micros(1);
        tracker.on_arrival(t, ids[0], Dbm::new(power), true);
        tracker.on_arrival(t, ids[1], Dbm::new(power), true);
        let (_, d0) = tracker.on_departure(t, ids[0]);
        let (_, d1) = tracker.on_departure(t, ids[1]);
        let decoded = [d0, d1]
            .iter()
            .filter(|d| **d == Some(DecodeOutcome::Decoded))
            .count();
        prop_assert_eq!(decoded, 0, "equal-power overlap must garble");
    }
}
