//! Property tests holding the two spatial index builders together.
//!
//! The tile-accelerated candidate search ([`TileIndex::build`]) and the
//! brute-force O(n²) reference ([`TileIndex::build_dense`]) must agree
//! on every candidate list for *any* placement — and two spatial
//! mediums built over them must sample byte-identical reception and
//! collision outcomes. This is the refactor's safety net: the dense
//! path is the specification, the tile path is the optimization.

use airguard_phy::{interference_cutoff, Medium, PhyConfig, Position, TileIndex};
use airguard_sim::{MasterSeed, NodeId};
use proptest::prelude::*;

/// Random placements over a few kilometers: wide enough that the tile
/// grid has many tiles, dense enough that candidate lists are nonempty.
fn placements(max_nodes: usize) -> impl Strategy<Value = Vec<Position>> {
    proptest::collection::vec(
        (0.0f64..4_000.0, 0.0f64..4_000.0).prop_map(|(x, y)| Position::new(x, y)),
        1..max_nodes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn tiled_candidate_lists_match_dense(positions in placements(60)) {
        let cutoff = interference_cutoff(&PhyConfig::paper_default());
        let tiled = TileIndex::build(&positions, cutoff);
        let dense = TileIndex::build_dense(&positions, cutoff);
        prop_assert_eq!(tiled.edge_count(), dense.edge_count());
        for i in 0..positions.len() {
            prop_assert_eq!(tiled.candidates(i), dense.candidates(i));
        }
    }

    #[test]
    fn tiled_medium_samples_identically_to_dense(
        positions in placements(40),
        seed in 1u64..5_000,
    ) {
        let ids: Vec<u32> = (0..positions.len() as u32).collect();
        let mut tiled = Medium::new_spatial(
            PhyConfig::paper_default(),
            positions.clone(),
            ids.clone(),
            MasterSeed::new(seed),
            true,
        );
        let mut dense = Medium::new_spatial(
            PhyConfig::paper_default(),
            positions.clone(),
            ids,
            MasterSeed::new(seed),
            false,
        );
        // Several transmissions per node, interleaved, so per-pair
        // keys exercise growing per-transmitter counts.
        for _ in 0..3 {
            for i in 0..positions.len() {
                let a = tiled.start_tx(NodeId::new(i as u32));
                let b = dense.start_tx(NodeId::new(i as u32));
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn spatial_outcomes_are_unaffected_by_out_of_range_nodes(
        positions in placements(20),
        seed in 1u64..5_000,
    ) {
        // Causal independence, the property intra-run sharding rests
        // on: appending a far-away cluster must not change any local
        // pair's outcome stream.
        let n = positions.len();
        let mut padded = positions.clone();
        for k in 0..7u32 {
            padded.push(Position::new(100_000.0 + 300.0 * f64::from(k), 0.0));
        }
        let mut local = Medium::new_spatial(
            PhyConfig::paper_default(),
            positions,
            (0..n as u32).collect(),
            MasterSeed::new(seed),
            true,
        );
        let mut crowded = Medium::new_spatial(
            PhyConfig::paper_default(),
            padded,
            (0..(n + 7) as u32).collect(),
            MasterSeed::new(seed),
            true,
        );
        for _ in 0..3 {
            for i in 0..n {
                let a = local.start_tx(NodeId::new(i as u32));
                let b = crowded.start_tx(NodeId::new(i as u32));
                prop_assert_eq!(a.listeners, b.listeners);
            }
        }
    }
}
