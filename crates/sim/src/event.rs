//! The event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, used to cancel it before it fires.
///
/// Event ids are unique for the lifetime of a [`Scheduler`]; a cancelled or
/// fired id is never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    event: E,
}

// Min-heap by (time, seq): earlier times first; FIFO among equal times so
// execution order is deterministic and matches scheduling order.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

/// A deterministic discrete-event scheduler.
///
/// Events are delivered in nondecreasing time order; ties are broken by
/// scheduling order (FIFO). Cancellation is *logical*: cancelled entries
/// stay in the heap but are skipped on pop, which keeps both operations
/// `O(log n)` amortized.
///
/// # Example
///
/// ```
/// use airguard_sim::{Scheduler, SimDuration};
///
/// let mut sched = Scheduler::new();
/// let keep = sched.schedule_in(SimDuration::from_micros(10), "keep");
/// let drop = sched.schedule_in(SimDuration::from_micros(5), "drop");
/// assert!(sched.cancel(drop));
/// let (_, ev) = sched.pop().unwrap();
/// assert_eq!(ev, "keep");
/// # let _ = keep;
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    heap: BinaryHeap<Entry<E>>,
    /// Ids of entries still in the heap that have not been cancelled.
    live: BTreeSet<EventId>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            live: BTreeSet::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`Scheduler::now`] — scheduling into the
    /// past is always a logic error in a causal simulation.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            time: at,
            seq: self.next_seq,
            id,
            event,
        });
        self.live.insert(id);
        self.next_seq += 1;
        id
    }

    /// Schedules `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id)
    }

    /// Removes and returns the next pending event, advancing the clock to
    /// its timestamp. Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.live.remove(&entry.id) {
                continue; // cancelled
            }
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Timestamp of the next live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if !self.live.contains(&entry.id) {
                self.heap.pop();
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live (not cancelled) pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far (diagnostic counter).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(30), 3);
        s.schedule_at(SimTime::from_micros(10), 1);
        s.schedule_at(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            s.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(7), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_micros(7));
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_micros(1), "a");
        let b = s.schedule_at(SimTime::from_micros(2), "b");
        assert!(s.cancel(a));
        assert!(!s.cancel(a), "double cancel reports false");
        assert_eq!(s.pop().map(|(_, e)| e), Some("b"));
        assert!(!s.cancel(b), "cancel after fire reports false");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(!s.cancel(EventId(99)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut s = Scheduler::new();
        let a = s.schedule_in(SimDuration::from_micros(1), ());
        s.schedule_in(SimDuration::from_micros(2), ());
        assert_eq!(s.len(), 2);
        s.cancel(a);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        s.pop();
        assert!(s.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_micros(1), ());
        s.schedule_at(SimTime::from_micros(5), ());
        s.cancel(a);
        assert_eq!(s.peek_time(), Some(SimTime::from_micros(5)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(10), ());
        s.pop();
        s.schedule_at(SimTime::from_micros(5), ());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(100), "first");
        s.pop();
        s.schedule_in(SimDuration::from_micros(10), "second");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(110));
    }

    #[test]
    fn events_processed_counts_only_delivered() {
        let mut s = Scheduler::new();
        let a = s.schedule_in(SimDuration::from_micros(1), ());
        s.schedule_in(SimDuration::from_micros(2), ());
        s.cancel(a);
        while s.pop().is_some() {}
        assert_eq!(s.events_processed(), 1);
    }
}
