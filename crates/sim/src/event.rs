//! The event queue at the heart of the simulator.
//!
//! The scheduler is slab-backed: event payloads live in a vector of
//! reusable slots, and the binary heap orders lightweight
//! `(time, seq, slot)` stamps. An [`EventId`] carries its slot plus the
//! *generation* (the global schedule sequence number) the slot held when
//! the event was created, so cancellation is a single slot comparison —
//! no side set, no tree churn — and a recycled slot can never be
//! confused with the event that previously occupied it. Heap entries of
//! cancelled events go stale in place and are skipped on pop; when more
//! than half the heap is stale the heap is compacted in one O(n) pass.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, used to cancel it before it fires.
///
/// Event ids are unique for the lifetime of a [`Scheduler`]; a cancelled
/// or fired id is never reused (the generation stamp is the global
/// schedule counter, which never repeats), including across heap
/// compactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    slot: u32,
    generation: u64,
}

/// One payload slot of the slab. `generation` is the stamp of the event
/// the slot currently (or most recently) held; `event` is `Some` only
/// while that event is pending.
#[derive(Debug)]
struct Slot<E> {
    generation: u64,
    event: Option<E>,
}

/// What the heap orders: a stamp pointing into the slab. The payload
/// deliberately stays out of the heap so sift operations move 24 bytes
/// regardless of the event type.
#[derive(Debug)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

// Min-heap by (time, seq): earlier times first; FIFO among equal times so
// execution order is deterministic and matches scheduling order.
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

/// Below this heap size compaction is pointless — stale entries drain
/// through ordinary pops faster than a rebuild pays off.
const COMPACT_MIN: usize = 64;

/// A deterministic discrete-event scheduler.
///
/// Events are delivered in nondecreasing time order; ties are broken by
/// scheduling order (FIFO). Cancellation is *logical* and O(1): the
/// event's slab slot is reclaimed immediately and its heap entry goes
/// stale, to be skipped on pop or swept out when stale entries exceed
/// half the heap.
///
/// # Example
///
/// ```
/// use airguard_sim::{Scheduler, SimDuration};
///
/// let mut sched = Scheduler::new();
/// let keep = sched.schedule_in(SimDuration::from_micros(10), "keep");
/// let drop = sched.schedule_in(SimDuration::from_micros(5), "drop");
/// assert!(sched.cancel(drop));
/// let (_, ev) = sched.pop().unwrap();
/// assert_eq!(ev, "keep");
/// # let _ = keep;
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    heap: BinaryHeap<HeapEntry>,
    slots: Vec<Slot<E>>,
    /// Slots whose event was cancelled or delivered, ready for reuse.
    free: Vec<u32>,
    next_seq: u64,
    popped: u64,
    /// Live (pending, not cancelled) events.
    live: usize,
    /// Heap entries whose event was cancelled; they are skipped on pop
    /// and swept out by compaction.
    stale: usize,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            popped: 0,
            live: 0,
            stale: 0,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`Scheduler::now`] — scheduling into the
    /// past is always a logic error in a causal simulation.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Slot {
                    generation: seq,
                    event: Some(event),
                };
                slot
            }
            None => {
                let slot =
                    u32::try_from(self.slots.len()).expect("more than u32::MAX pending events"); // lint:allow(panic-expect) — 4 billion *simultaneously pending* events exceeds any machine's memory long before this fires
                self.slots.push(Slot {
                    generation: seq,
                    event: Some(event),
                });
                slot
            }
        };
        self.heap.push(HeapEntry {
            time: at,
            seq,
            slot,
        });
        self.live += 1;
        EventId {
            slot,
            generation: seq,
        }
    }

    /// Schedules `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// True when `id`'s event is still pending: its slot still carries
    /// the id's generation stamp and a payload.
    fn is_live(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot as usize)
            .is_some_and(|s| s.generation == id.generation && s.event.is_some())
    }

    /// Cancels a previously scheduled event in O(1).
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        let slot = &mut self.slots[id.slot as usize];
        slot.event = None;
        self.free.push(id.slot);
        self.live -= 1;
        self.stale += 1;
        self.maybe_compact();
        true
    }

    /// Sweeps stale entries out of the heap once they outnumber the live
    /// ones. Ids survive compaction untouched: the stamps live in the
    /// slab, and only heap entries whose stamp no longer matches their
    /// slot are dropped.
    fn maybe_compact(&mut self) {
        if self.heap.len() < COMPACT_MIN || self.stale * 2 <= self.heap.len() {
            return;
        }
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| {
            let slot = &self.slots[e.slot as usize];
            slot.generation == e.seq && slot.event.is_some()
        });
        self.heap = BinaryHeap::from(entries);
        self.stale = 0;
    }

    /// Removes and returns the next pending event, advancing the clock to
    /// its timestamp. Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let slot = &mut self.slots[entry.slot as usize];
            if slot.generation != entry.seq || slot.event.is_none() {
                self.stale -= 1;
                continue; // cancelled
            }
            let event = slot.event.take().expect("checked is_some above"); // lint:allow(panic-expect) — guarded by the branch above on this single thread
            self.free.push(entry.slot);
            self.live -= 1;
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, event));
        }
        None
    }

    /// Timestamp of the next live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            let slot = &self.slots[entry.slot as usize];
            if slot.generation != entry.seq || slot.event.is_none() {
                self.heap.pop();
                self.stale -= 1;
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live (not cancelled) pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far (diagnostic counter).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(30), 3);
        s.schedule_at(SimTime::from_micros(10), 1);
        s.schedule_at(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            s.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(7), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_micros(7));
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_micros(1), "a");
        let b = s.schedule_at(SimTime::from_micros(2), "b");
        assert!(s.cancel(a));
        assert!(!s.cancel(a), "double cancel reports false");
        assert_eq!(s.pop().map(|(_, e)| e), Some("b"));
        assert!(!s.cancel(b), "cancel after fire reports false");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut s: Scheduler<()> = Scheduler::new();
        let id = {
            let mut other: Scheduler<()> = Scheduler::new();
            other.schedule_at(SimTime::from_micros(1), ())
        };
        assert!(!s.cancel(id), "id from an empty slab is unknown");
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut s = Scheduler::new();
        let a = s.schedule_in(SimDuration::from_micros(1), ());
        s.schedule_in(SimDuration::from_micros(2), ());
        assert_eq!(s.len(), 2);
        s.cancel(a);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        s.pop();
        assert!(s.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_micros(1), ());
        s.schedule_at(SimTime::from_micros(5), ());
        s.cancel(a);
        assert_eq!(s.peek_time(), Some(SimTime::from_micros(5)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(10), ());
        s.pop();
        s.schedule_at(SimTime::from_micros(5), ());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_micros(100), "first");
        s.pop();
        s.schedule_in(SimDuration::from_micros(10), "second");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(110));
    }

    #[test]
    fn events_processed_counts_only_delivered() {
        let mut s = Scheduler::new();
        let a = s.schedule_in(SimDuration::from_micros(1), ());
        s.schedule_in(SimDuration::from_micros(2), ());
        s.cancel(a);
        while s.pop().is_some() {}
        assert_eq!(s.events_processed(), 1);
    }

    #[test]
    fn recycled_slots_do_not_resurrect_old_ids() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_micros(1), "a");
        assert!(s.cancel(a));
        // The slot is reused by a fresh event; the dead id must stay dead.
        let b = s.schedule_at(SimTime::from_micros(2), "b");
        assert!(!s.cancel(a), "recycled slot must not revive the old id");
        assert_ne!(a, b);
        assert_eq!(s.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn compaction_preserves_order_and_pending_ids() {
        let mut s = Scheduler::new();
        let mut keep = Vec::new();
        // Interleave survivors and cancellations until the stale fraction
        // crosses one half and compaction fires (heap > COMPACT_MIN).
        for i in 0..200u64 {
            let id = s.schedule_at(SimTime::from_micros(1000 + i), i);
            if i % 4 == 0 {
                keep.push((id, i));
            } else {
                assert!(s.cancel(id));
            }
        }
        assert!(s.stale * 2 <= s.heap.len(), "compaction should have fired");
        // Pending ids survive compaction: cancel half of the survivors now.
        for &(id, _) in keep.iter().skip(keep.len() / 2) {
            assert!(s.cancel(id), "id stayed cancellable across compaction");
        }
        let expect: Vec<u64> = keep.iter().take(keep.len() / 2).map(|&(_, v)| v).collect();
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, expect, "delivery order changed across compaction");
    }

    #[test]
    fn heavy_cancel_churn_stays_consistent() {
        let mut s = Scheduler::new();
        let mut ids = Vec::new();
        for round in 0..50u64 {
            for i in 0..20u64 {
                ids.push(s.schedule_at(SimTime::from_micros(round * 100 + i), (round, i)));
            }
            // Cancel every other id ever created; most are already dead.
            for (n, id) in ids.iter().enumerate() {
                if n % 2 == 0 {
                    s.cancel(*id);
                }
            }
            while s.pop().is_some() {}
            assert!(s.is_empty());
            assert_eq!(s.heap.len(), 0);
        }
    }
}
