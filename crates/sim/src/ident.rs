//! Node identity.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a simulated node.
///
/// Node ids are dense indices assigned by the scenario builder; the MAC
/// protocol additionally feeds the numeric value into the deterministic
/// retry-backoff function `f(backoff, nodeId, attempt)` from the paper, so
/// the id is part of protocol state, not just bookkeeping.
///
/// ```
/// use airguard_sim::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n}"), "n3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw numeric value (used by the protocol's deterministic
    /// retry-backoff function).
    #[must_use]
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let id = NodeId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(id.value(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
