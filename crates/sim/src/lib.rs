//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the foundation of the `airguard` workspace: every other
//! crate (PHY, MAC, scenarios, benches) runs on top of the primitives
//! defined here.
//!
//! The kernel provides four things:
//!
//! * **Virtual time** — [`SimTime`] and [`SimDuration`] are microsecond
//!   resolution newtypes. Microseconds are exact for every IEEE 802.11
//!   DSSS interval used by the study (slot = 20 µs, SIFS = 10 µs,
//!   DIFS = 50 µs, PLCP preamble = 192 µs), so no floating-point drift can
//!   creep into slot accounting.
//! * **An event queue** — [`Scheduler`] orders events by `(time, sequence)`
//!   and supports O(1) logical cancellation through [`EventId`] handles,
//!   which the MAC uses to abort CTS/ACK timeouts and backoff completions.
//! * **Deterministic randomness** — [`rng::RngStream`] derives independent,
//!   reproducible RNGs from one master seed, keyed by a component label and
//!   index, so adding a new consumer of randomness never perturbs the
//!   random sequence observed by existing components.
//! * **Tracing** — [`trace::Trace`] is a cheap, shareable, structured event
//!   log used by tests to assert protocol sequences and by the examples to
//!   narrate a run.
//!
//! # Example
//!
//! ```
//! use airguard_sim::{Scheduler, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_in(SimDuration::from_micros(10), Ev::Pong);
//! sched.schedule_in(SimDuration::from_micros(5), Ev::Ping);
//! let (t1, e1) = sched.pop().unwrap();
//! assert_eq!((t1, e1), (SimTime::from_micros(5), Ev::Ping));
//! let (t2, e2) = sched.pop().unwrap();
//! assert_eq!((t2, e2), (SimTime::from_micros(10), Ev::Pong));
//! assert!(sched.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod ident;
pub mod rng;
mod time;
pub mod trace;

pub use event::{EventId, Scheduler};
pub use ident::NodeId;
pub use rng::{MasterSeed, RngStream};
pub use time::{SimDuration, SimTime};
