//! Deterministic, stream-split random number generation.
//!
//! The paper averages every data point over 30 seeded runs that share a
//! common seed set. To reproduce that, all randomness in the workspace
//! flows from a single [`MasterSeed`] through named [`RngStream`]s: each
//! (component, index) pair gets an independent generator whose sequence
//! depends only on the master seed and the stream key — never on the order
//! in which other components consume randomness.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The single seed from which every random stream of one simulation run is
/// derived.
///
/// ```
/// use airguard_sim::MasterSeed;
///
/// let seed = MasterSeed::new(7);
/// let a = seed.stream("backoff", 1);
/// let b = seed.stream("backoff", 2);
/// // Independent streams for different indices, reproducible per key.
/// # let _ = (a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MasterSeed(u64);

impl MasterSeed {
    /// Wraps a raw 64-bit seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        MasterSeed(seed)
    }

    /// The raw seed value.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Derives the deterministic generator for stream `(domain, index)`.
    #[must_use]
    pub fn stream(self, domain: &str, index: u64) -> RngStream {
        RngStream::new(self, domain, index)
    }
}

/// splitmix64: the standard 64-bit finalizer used to decorrelate seeds.
#[must_use]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the domain label, so distinct component names map to
/// well-separated stream keys.
#[must_use]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A deterministic random stream derived from a [`MasterSeed`].
///
/// This is a thin newtype over [`StdRng`]; use it anywhere an
/// [`rand::Rng`] is expected via [`RngStream::rng`] or the `RngCore`
/// forwarding impl.
#[derive(Debug)]
pub struct RngStream {
    inner: StdRng,
    key: u64,
}

impl RngStream {
    /// Derives the stream for `(domain, index)` under `master`.
    #[must_use]
    pub fn new(master: MasterSeed, domain: &str, index: u64) -> Self {
        let key = splitmix64(
            splitmix64(master.0 ^ fnv1a(domain.as_bytes())).wrapping_add(splitmix64(index)),
        );
        RngStream {
            inner: StdRng::seed_from_u64(key),
            key,
        }
    }

    /// The derived 64-bit key identifying this stream (diagnostics only).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Mutable access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

// Implementing `TryRng<Error = Infallible>` makes `RngStream` a full
// `rand::Rng` (and unlocks the ergonomic `RngExt` methods) via the blanket
// impls in `rand_core`.
impl rand::rand_core::TryRng for RngStream {
    type Error = std::convert::Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok(rand::Rng::next_u32(&mut self.inner))
    }

    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(rand::Rng::next_u64(&mut self.inner))
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
        rand::Rng::fill_bytes(&mut self.inner, dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn draw(stream: &mut RngStream, n: usize) -> Vec<u64> {
        (0..n).map(|_| stream.rng().random::<u64>()).collect()
    }

    #[test]
    fn same_key_reproduces_sequence() {
        let seed = MasterSeed::new(42);
        let a = draw(&mut seed.stream("mac", 3), 16);
        let b = draw(&mut seed.stream("mac", 3), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn different_indices_differ() {
        let seed = MasterSeed::new(42);
        let a = draw(&mut seed.stream("mac", 0), 16);
        let b = draw(&mut seed.stream("mac", 1), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn different_domains_differ() {
        let seed = MasterSeed::new(42);
        let a = draw(&mut seed.stream("mac", 0), 16);
        let b = draw(&mut seed.stream("phy", 0), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = draw(&mut MasterSeed::new(1).stream("mac", 0), 16);
        let b = draw(&mut MasterSeed::new(2).stream("mac", 0), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn stream_usable_as_rngcore() {
        let mut s = MasterSeed::new(9).stream("x", 0);
        // Exercise the RngCore forwarding impl directly.
        let v: f64 = s.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn keys_are_stable_across_calls() {
        let seed = MasterSeed::new(5);
        assert_eq!(seed.stream("a", 1).key(), seed.stream("a", 1).key());
        assert_ne!(seed.stream("a", 1).key(), seed.stream("a", 2).key());
    }
}
