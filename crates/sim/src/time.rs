//! Virtual-time newtypes.
//!
//! All simulation time is integral microseconds. Every IEEE 802.11 DSSS
//! interval used by the study divides evenly into microseconds, so slot
//! arithmetic is exact.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in virtual time, measured in microseconds since the start of
/// the simulation.
///
/// `SimTime` is totally ordered and supports the natural arithmetic with
/// [`SimDuration`]:
///
/// ```
/// use airguard_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(50);
/// assert_eq!(t.as_micros(), 50);
/// assert_eq!(t - SimTime::from_micros(20), SimDuration::from_micros(30));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any time reachable in practice; useful as a
    /// sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time `micros` microseconds after the origin.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time `secs` seconds after the origin.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the origin.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future, which
    /// makes interval accounting robust against zero-length busy periods.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of virtual time, measured in integral microseconds.
///
/// ```
/// use airguard_sim::SimDuration;
///
/// let slot = SimDuration::from_micros(20);
/// assert_eq!(slot * 3, SimDuration::from_micros(60));
/// assert_eq!(SimDuration::from_millis(1) / slot, 50);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Total microseconds in this duration.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in fractional seconds (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - rhs`, clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

/// Integer division: how many whole `rhs` spans fit in `self`.
impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        assert!(!rhs.is_zero(), "division of SimDuration by zero duration");
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_and_arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(30);
        assert!(a < b);
        assert_eq!(b - a, SimDuration::from_micros(20));
        assert_eq!(a + SimDuration::from_micros(20), b);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(30);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(20));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn duration_div_counts_whole_spans() {
        let slot = SimDuration::from_micros(20);
        assert_eq!(SimDuration::from_micros(59) / slot, 2);
        assert_eq!(SimDuration::from_micros(60) / slot, 3);
        assert_eq!(SimDuration::ZERO / slot, 0);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn duration_div_by_zero_panics() {
        let _ = SimDuration::from_micros(1) / SimDuration::ZERO;
    }

    #[test]
    fn duration_saturating_sub() {
        let a = SimDuration::from_micros(5);
        let b = SimDuration::from_micros(9);
        assert_eq!(b.saturating_sub(a), SimDuration::from_micros(4));
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
    }

    #[test]
    fn display_is_nonempty_and_scaled() {
        assert_eq!(format!("{}", SimDuration::from_micros(15)), "15us");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(6));
    }

    #[test]
    fn time_min_max() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-0.1);
    }
}
