//! A lightweight structured trace bus.
//!
//! Traces serve two purposes in this workspace: integration tests assert on
//! recorded protocol sequences (e.g. "RTS precedes CTS precedes DATA
//! precedes ACK"), and the examples print a human-readable narration of a
//! run. The bus is shareable ([`Trace`] is `Clone` + `Send` + `Sync`) so
//! the medium, every MAC instance, and every monitor can write to the same
//! log without threading lifetimes through the simulator.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::SimTime;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event was recorded.
    pub time: SimTime,
    /// Short machine-matchable category, e.g. `"mac.tx"`.
    pub category: String,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.category, self.detail)
    }
}

#[derive(Debug, Default)]
struct Inner {
    enabled: bool,
    events: Vec<TraceEvent>,
}

/// A shareable, optionally-enabled trace log.
///
/// A disabled trace (the default) records nothing and costs one atomic
/// lock acquisition per event — negligible against event-queue work, and
/// the hot paths check [`Trace::is_enabled`] first.
///
/// ```
/// use airguard_sim::trace::Trace;
/// use airguard_sim::SimTime;
///
/// let trace = Trace::enabled();
/// trace.record(SimTime::from_micros(10), "mac.tx", "RTS 1->0");
/// assert_eq!(trace.count("mac.tx"), 1);
/// assert!(trace.events().iter().any(|e| e.detail.contains("RTS")));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Arc<Mutex<Inner>>,
}

impl Trace {
    /// Creates a disabled (no-op) trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an enabled trace that records every event.
    #[must_use]
    pub fn enabled() -> Self {
        let t = Trace::new();
        t.set_enabled(true);
        t
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.lock().enabled = enabled;
    }

    /// Whether events are currently being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Records an event if the trace is enabled.
    pub fn record(&self, time: SimTime, category: &str, detail: impl Into<String>) {
        let mut inner = self.inner.lock();
        if inner.enabled {
            inner.events.push(TraceEvent {
                time,
                category: category.to_owned(),
                detail: detail.into(),
            });
        }
    }

    /// A snapshot of all recorded events, in recording order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.clone()
    }

    /// Events whose category equals `category`.
    #[must_use]
    pub fn events_in(&self, category: &str) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.category == category)
            .cloned()
            .collect()
    }

    /// Number of recorded events in `category`.
    #[must_use]
    pub fn count(&self, category: &str) -> usize {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.category == category)
            .count()
    }

    /// Discards all recorded events (recording state is unchanged).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::new();
        assert!(!t.is_enabled());
        t.record(SimTime::ZERO, "x", "ignored");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let t = Trace::enabled();
        t.record(SimTime::from_micros(1), "a", "one");
        t.record(SimTime::from_micros(2), "b", "two");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].detail, "one");
        assert_eq!(evs[1].category, "b");
    }

    #[test]
    fn category_filter_and_count() {
        let t = Trace::enabled();
        t.record(SimTime::ZERO, "mac.tx", "rts");
        t.record(SimTime::ZERO, "mac.rx", "cts");
        t.record(SimTime::ZERO, "mac.tx", "data");
        assert_eq!(t.count("mac.tx"), 2);
        assert_eq!(t.events_in("mac.rx").len(), 1);
    }

    #[test]
    fn clones_share_the_log() {
        let t = Trace::enabled();
        let t2 = t.clone();
        t2.record(SimTime::ZERO, "shared", "x");
        assert_eq!(t.count("shared"), 1);
    }

    #[test]
    fn clear_keeps_enabled_state() {
        let t = Trace::enabled();
        t.record(SimTime::ZERO, "a", "x");
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn display_includes_all_fields() {
        let ev = TraceEvent {
            time: SimTime::from_micros(5),
            category: "cat".into(),
            detail: "det".into(),
        };
        let s = format!("{ev}");
        assert!(s.contains("cat") && s.contains("det"));
    }
}
