//! A lightweight structured trace bus.
//!
//! Traces serve two purposes in this workspace: integration tests assert on
//! recorded protocol sequences (e.g. "RTS precedes CTS precedes DATA
//! precedes ACK"), and the examples print a human-readable narration of a
//! run. The bus is shareable ([`Trace`] is `Clone` + `Send` + `Sync`) so
//! the medium, every MAC instance, and every monitor can write to the same
//! log without threading lifetimes through the simulator.
//!
//! Since the `airguard-obs` migration this module is a thin compatibility
//! shim: the log itself is a typed [`EventSink`], and the stringly
//! [`TraceEvent`] view is reconstructed on demand. Protocol code records
//! typed [`ObsEvent`]s via [`Trace::emit`]; the legacy
//! [`Trace::record`] API stores free-form [`ObsEvent::Note`]s. A
//! disabled trace rejects events with a single relaxed atomic load — no
//! allocation, no lock.

use std::fmt;

use airguard_obs::{EventSink, Record, NO_NODE};
// Re-exported so crates that only talk to the trace bus (e.g. the phy
// reception tracker) can emit typed events without their own obs edge.
pub use airguard_obs::ObsEvent;

use crate::ident::NodeId;
use crate::time::SimTime;

/// One recorded trace event, as the legacy string API exposes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event was recorded.
    pub time: SimTime,
    /// Short machine-matchable category, e.g. `"mac.tx"`.
    pub category: String,
    /// Human-readable detail.
    pub detail: String,
}

impl TraceEvent {
    fn from_record(record: Record) -> TraceEvent {
        let time = SimTime::from_micros(record.time_us);
        match record.event {
            ObsEvent::Note { category, detail } => TraceEvent {
                time,
                category,
                detail,
            },
            event => TraceEvent {
                time,
                category: event.category().name().to_owned(),
                detail: if record.node == NO_NODE {
                    event.to_string()
                } else {
                    format!("n{}: {event}", record.node)
                },
            },
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.category, self.detail)
    }
}

/// A shareable, optionally-enabled trace log.
///
/// A disabled trace (the default) records nothing; both [`Trace::emit`]
/// and [`Trace::record`] return after one relaxed atomic mask check,
/// without allocating or taking the buffer lock.
///
/// ```
/// use airguard_sim::trace::Trace;
/// use airguard_sim::SimTime;
///
/// let trace = Trace::enabled();
/// trace.record(SimTime::from_micros(10), "mac.tx", "RTS 1->0");
/// assert_eq!(trace.count("mac.tx"), 1);
/// assert!(trace.events().iter().any(|e| e.detail.contains("RTS")));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    sink: EventSink,
}

impl Trace {
    /// Creates a disabled (no-op) trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an enabled trace that records every event.
    #[must_use]
    pub fn enabled() -> Self {
        Trace {
            sink: EventSink::enabled(),
        }
    }

    /// Wraps an existing sink; records written through either handle
    /// are visible to both.
    #[must_use]
    pub fn from_sink(sink: EventSink) -> Self {
        Trace { sink }
    }

    /// The underlying typed sink (shared with this trace).
    #[must_use]
    pub fn sink(&self) -> &EventSink {
        &self.sink
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&self, enabled: bool) {
        self.sink.set_enabled(enabled);
    }

    /// Whether events are currently being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_enabled()
    }

    /// Records a typed event attributed to `node`, if enabled.
    pub fn emit(&self, time: SimTime, node: NodeId, event: ObsEvent) {
        self.sink.emit(time.as_micros(), node.value(), event);
    }

    /// Records a free-form string event if the trace is enabled.
    ///
    /// The enabled check happens before the `detail` conversion, so a
    /// disabled trace performs no allocation here (callers passing
    /// `format!(..)` arguments still pay for those at the call site;
    /// hot paths use [`Trace::emit`] with typed events instead).
    pub fn record(&self, time: SimTime, category: &str, detail: impl Into<String>) {
        if !self.is_enabled() {
            return;
        }
        self.sink.emit(
            time.as_micros(),
            NO_NODE,
            ObsEvent::Note {
                category: category.to_owned(),
                detail: detail.into(),
            },
        );
    }

    /// A snapshot of all recorded events, in recording order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.sink
            .records()
            .into_iter()
            .map(TraceEvent::from_record)
            .collect()
    }

    /// Events whose category equals `category`.
    #[must_use]
    pub fn events_in(&self, category: &str) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.category == category)
            .collect()
    }

    /// Number of recorded events in `category`.
    #[must_use]
    pub fn count(&self, category: &str) -> usize {
        self.events_in(category).len()
    }

    /// Discards all recorded events (recording state is unchanged).
    pub fn clear(&self) {
        self.sink.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::new();
        assert!(!t.is_enabled());
        t.record(SimTime::ZERO, "x", "ignored");
        assert!(t.events().is_empty());
    }

    #[test]
    fn disabled_trace_takes_no_lock() {
        let t = Trace::new();
        let before = t.sink().lock_acquisitions();
        for i in 0..100 {
            t.record(SimTime::from_micros(i), "x", "ignored");
            t.emit(
                SimTime::from_micros(i),
                NodeId::new(0),
                ObsEvent::CtsTx { dst: 1, xid: 0 },
            );
        }
        assert_eq!(
            t.sink().lock_acquisitions(),
            before,
            "disabled trace must not acquire the buffer lock"
        );
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let t = Trace::enabled();
        t.record(SimTime::from_micros(1), "a", "one");
        t.record(SimTime::from_micros(2), "b", "two");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].detail, "one");
        assert_eq!(evs[1].category, "b");
    }

    #[test]
    fn category_filter_and_count() {
        let t = Trace::enabled();
        t.record(SimTime::ZERO, "mac.tx", "rts");
        t.record(SimTime::ZERO, "mac.rx", "cts");
        t.record(SimTime::ZERO, "mac.tx", "data");
        assert_eq!(t.count("mac.tx"), 2);
        assert_eq!(t.events_in("mac.rx").len(), 1);
    }

    #[test]
    fn typed_events_share_categories_with_string_notes() {
        let t = Trace::enabled();
        t.emit(
            SimTime::ZERO,
            NodeId::new(1),
            ObsEvent::RtsTx {
                dst: 2,
                seq: 0,
                attempt: 1,
                xid: 0,
            },
        );
        t.record(SimTime::ZERO, "mac.tx", "legacy note");
        let tx = t.events_in("mac.tx");
        assert_eq!(tx.len(), 2);
        assert_eq!(tx[0].detail, "n1: Rts(seq=0, attempt=1) -> n2");
        assert_eq!(tx[1].detail, "legacy note");
    }

    #[test]
    fn clones_share_the_log() {
        let t = Trace::enabled();
        let t2 = t.clone();
        t2.record(SimTime::ZERO, "shared", "x");
        assert_eq!(t.count("shared"), 1);
    }

    #[test]
    fn clear_keeps_enabled_state() {
        let t = Trace::enabled();
        t.record(SimTime::ZERO, "a", "x");
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn display_includes_all_fields() {
        let ev = TraceEvent {
            time: SimTime::from_micros(5),
            category: "cat".into(),
            detail: "det".into(),
        };
        let s = format!("{ev}");
        assert!(s.contains("cat") && s.contains("det"));
    }
}
