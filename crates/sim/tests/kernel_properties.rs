//! Property tests of the simulation kernel: the scheduler's ordering
//! guarantees under arbitrary operation sequences, and RNG stream
//! independence.

use airguard_sim::{MasterSeed, Scheduler, SimTime};
use proptest::prelude::*;
use rand::RngExt;

#[derive(Debug, Clone)]
enum Op {
    Schedule { at: u64 },
    CancelNth { idx: usize },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..10_000).prop_map(|at| Op::Schedule { at }),
        (0usize..64).prop_map(|idx| Op::CancelNth { idx }),
        Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn delivery_is_never_time_reversed(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut s: Scheduler<u64> = Scheduler::new();
        let mut live_ids = Vec::new();
        let mut last_popped = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Schedule { at } => {
                    // Only schedule into the present or future.
                    let at = s.now().max(SimTime::from_micros(at));
                    let id = s.schedule_at(at, at.as_micros());
                    live_ids.push(id);
                }
                Op::CancelNth { idx } => {
                    if !live_ids.is_empty() {
                        let id = live_ids[idx % live_ids.len()];
                        s.cancel(id);
                    }
                }
                Op::Pop => {
                    if let Some((t, payload)) = s.pop() {
                        prop_assert!(t >= last_popped, "time went backwards");
                        prop_assert_eq!(t.as_micros(), payload);
                        last_popped = t;
                    }
                }
            }
        }
        // Drain: the remainder must still be ordered.
        while let Some((t, _)) = s.pop() {
            prop_assert!(t >= last_popped);
            last_popped = t;
        }
        prop_assert!(s.is_empty());
    }

    #[test]
    fn len_matches_live_count(
        schedule in 1usize..100,
        cancel in 0usize..100,
    ) {
        let mut s: Scheduler<usize> = Scheduler::new();
        let ids: Vec<_> = (0..schedule)
            .map(|i| s.schedule_at(SimTime::from_micros(i as u64 + 1), i))
            .collect();
        let mut cancelled = 0;
        for id in ids.iter().take(cancel.min(schedule)) {
            if s.cancel(*id) {
                cancelled += 1;
            }
        }
        prop_assert_eq!(s.len(), schedule - cancelled);
        let mut popped = 0;
        while s.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, schedule - cancelled);
    }

    #[test]
    fn rng_streams_reproduce_and_separate(
        seed in any::<u64>(),
        domain_idx in 0usize..3,
        index in 0u64..32,
    ) {
        let domains = ["mac", "phy", "traffic"];
        let domain = domains[domain_idx];
        let master = MasterSeed::new(seed);
        let a: Vec<u64> = {
            let mut s = master.stream(domain, index);
            (0..8).map(|_| s.random::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut s = master.stream(domain, index);
            (0..8).map(|_| s.random::<u64>()).collect()
        };
        prop_assert_eq!(&a, &b, "same key must reproduce");
        let c: Vec<u64> = {
            let mut s = master.stream(domain, index + 1);
            (0..8).map(|_| s.random::<u64>()).collect()
        };
        prop_assert_ne!(&a, &c, "adjacent indices must differ");
    }
}
