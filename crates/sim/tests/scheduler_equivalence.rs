//! Equivalence property: the slab-backed scheduler behaves exactly like
//! the reference semantics of the original `BinaryHeap` + `BTreeSet`
//! implementation under arbitrary schedule/cancel/pop interleavings —
//! same delivery sequence (time, FIFO-seq), same cancel return values,
//! same live counts — and ids are never reused, including across the
//! compactions the churny cases provoke.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashSet};

use airguard_sim::{EventId, Scheduler};
use proptest::prelude::*;

/// Reference model: a verbatim re-implementation of the pre-slab
/// scheduler's semantics (heap of full entries + side set of live ids).
#[derive(Default)]
struct ModelScheduler {
    now: u64,
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    payloads: Vec<u64>,
    live: BTreeSet<u64>,
    next_seq: u64,
}

impl ModelScheduler {
    fn schedule_at(&mut self, at: u64, payload: u64) -> u64 {
        assert!(at >= self.now);
        let id = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, id)));
        self.payloads.push(payload);
        self.live.insert(id);
        id
    }

    fn cancel(&mut self, id: u64) -> bool {
        self.live.remove(&id)
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        while let Some(Reverse((time, id))) = self.heap.pop() {
            if !self.live.remove(&id) {
                continue;
            }
            self.now = time;
            return Some((time, self.payloads[id as usize]));
        }
        None
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + delta` (absolute times stay causal).
    Schedule {
        delta: u64,
    },
    /// Cancel the nth id ever returned (live or dead — exercising
    /// double-cancel and cancel-after-fire equally).
    CancelNth {
        idx: usize,
    },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Schedule-heavy mix with many zero/equal deltas to stress FIFO
        // tie-breaking; cancels frequent enough to trigger compaction.
        (0u64..50).prop_map(|delta| Op::Schedule { delta }),
        (0u64..50).prop_map(|delta| Op::Schedule { delta }),
        (0usize..512).prop_map(|idx| Op::CancelNth { idx }),
        (0usize..512).prop_map(|idx| Op::CancelNth { idx }),
        Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn slab_scheduler_matches_the_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let mut model = ModelScheduler::default();
        let mut slab: Scheduler<u64> = Scheduler::new();
        let mut model_ids: Vec<u64> = Vec::new();
        let mut slab_ids: Vec<EventId> = Vec::new();
        let mut payload = 0u64;

        for op in ops {
            match op {
                Op::Schedule { delta } => {
                    let at = slab.now() + airguard_sim::SimDuration::from_micros(delta);
                    model_ids.push(model.schedule_at(at.as_micros(), payload));
                    slab_ids.push(slab.schedule_at(at, payload));
                    payload += 1;
                }
                Op::CancelNth { idx } => {
                    if !model_ids.is_empty() {
                        let i = idx % model_ids.len();
                        let m = model.cancel(model_ids[i]);
                        let s = slab.cancel(slab_ids[i]);
                        prop_assert_eq!(m, s, "cancel verdict diverged at id #{}", i);
                    }
                }
                Op::Pop => {
                    let m = model.pop();
                    let s = slab.pop().map(|(t, p)| (t.as_micros(), p));
                    prop_assert_eq!(m, s, "delivery diverged");
                }
            }
            prop_assert_eq!(model.len(), slab.len(), "live count diverged");
            prop_assert_eq!(model.len() == 0, slab.is_empty());
        }

        // Drain both: the tails must match element for element.
        loop {
            let m = model.pop();
            let s = slab.pop().map(|(t, p)| (t.as_micros(), p));
            prop_assert_eq!(&m, &s, "drain diverged");
            if m.is_none() {
                break;
            }
        }

        // Id uniqueness: every id ever returned is distinct, across any
        // compactions the cancel churn above provoked.
        let distinct: HashSet<EventId> = slab_ids.iter().copied().collect();
        prop_assert_eq!(distinct.len(), slab_ids.len(), "an EventId was reused");
    }

    #[test]
    fn cancelled_never_fires(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut slab: Scheduler<u64> = Scheduler::new();
        let mut ids: Vec<EventId> = Vec::new();
        let mut cancelled: HashSet<u64> = HashSet::new();
        let mut delivered: Vec<u64> = Vec::new();
        let mut payload = 0u64;

        for op in ops {
            match op {
                Op::Schedule { delta } => {
                    let at = slab.now() + airguard_sim::SimDuration::from_micros(delta);
                    ids.push(slab.schedule_at(at, payload));
                    payload += 1;
                }
                Op::CancelNth { idx } => {
                    if !ids.is_empty() {
                        let i = idx % ids.len();
                        if slab.cancel(ids[i]) {
                            cancelled.insert(i as u64);
                        }
                    }
                }
                Op::Pop => {
                    if let Some((_, p)) = slab.pop() {
                        delivered.push(p);
                    }
                }
            }
        }
        while let Some((_, p)) = slab.pop() {
            delivered.push(p);
        }

        // Every payload is delivered at most once, and a successfully
        // cancelled payload is never delivered at all.
        let unique: HashSet<u64> = delivered.iter().copied().collect();
        prop_assert_eq!(unique.len(), delivered.len(), "duplicate delivery");
        for p in &delivered {
            prop_assert!(!cancelled.contains(p), "cancelled event {} fired", p);
        }
        prop_assert_eq!(
            delivered.len() + cancelled.len(),
            payload as usize,
            "every event is either delivered or cancelled after a drain"
        );
    }
}
