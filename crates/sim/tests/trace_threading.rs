//! The trace bus is shared across components; verify it behaves under
//! concurrent writers (the bench harness runs one simulation per thread,
//! each with its own trace, but a shared sink must also be safe).

use std::thread;

use airguard_sim::trace::Trace;
use airguard_sim::SimTime;

#[test]
fn concurrent_writers_lose_nothing() {
    let trace = Trace::enabled();
    let writers = 8;
    let per_writer = 500;
    thread::scope(|scope| {
        for w in 0..writers {
            let t = trace.clone();
            scope.spawn(move || {
                for i in 0..per_writer {
                    t.record(
                        SimTime::from_micros(i),
                        "concurrent",
                        format!("w{w} event {i}"),
                    );
                }
            });
        }
    });
    assert_eq!(trace.count("concurrent"), writers * per_writer as usize);
}

#[test]
fn trace_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Trace>();
}

#[test]
fn disabled_clone_of_enabled_trace_still_records() {
    // Cloning shares state: disabling through one handle disables all.
    let a = Trace::enabled();
    let b = a.clone();
    b.set_enabled(false);
    a.record(SimTime::ZERO, "x", "dropped");
    assert_eq!(a.count("x"), 0);
    b.set_enabled(true);
    a.record(SimTime::ZERO, "x", "kept");
    assert_eq!(b.count("x"), 1);
}
