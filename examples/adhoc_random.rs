//! Ad hoc network: random topology with several cheaters.
//!
//! The paper's Fig. 9 setting — 40 nodes placed uniformly in a
//! 1500 m × 700 m area, each with a backlogged CBR flow to a neighbor,
//! and 5 randomly chosen nodes misbehaving. Every node runs the modified
//! protocol, so every *receiver* independently monitors the senders it
//! serves; there is no central authority.
//!
//! Run with: `cargo run --release --example adhoc_random`

use airguard::net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let pm = 60.0;
    let report = ScenarioConfig::new(StandardScenario::Random)
        .protocol(Protocol::Correct)
        .misbehavior_percent(pm)
        .sim_time_secs(10)
        .seed(11)
        .run();

    println!(
        "random topology: 40 nodes, 1500m x 700m, {} cheaters at PM={pm}%\n",
        report.misbehaving.len()
    );
    println!(
        "ground-truth cheaters: {}",
        report
            .misbehaving
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "correct diagnosis: {:.1}%   misdiagnosis: {:.1}%",
        report.diagnosis().correct_diagnosis_percent(),
        report.diagnosis().misdiagnosis_percent()
    );
    println!(
        "throughput: cheaters avg {:.1} Kbps, honest avg {:.1} Kbps\n",
        report.msb_throughput_bps() / 1000.0,
        report.avg_throughput_bps() / 1000.0
    );

    // Each receiver that served a cheater saw it independently.
    println!("per-receiver verdicts about ground-truth cheaters:");
    for (receiver, monitor) in &report.monitors {
        for s in &monitor.senders {
            if report.misbehaving.contains(&s.node) && s.packets > 10 {
                println!(
                    "  receiver {receiver} on sender {}: {:4} packets, {:5.1}% flagged, {} deviations",
                    s.node,
                    s.packets,
                    s.flagged_percent(),
                    s.deviations
                );
            }
        }
    }
}
