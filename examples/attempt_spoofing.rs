//! Extension demo (§4.1): catching attempt-number spoofing with probes.
//!
//! A sender that lies about its attempt number (always reporting 1)
//! shrinks the `B_exp` the receiver reconstructs after collisions, hiding
//! part of its cheating. The paper's countermeasure: the receiver
//! occasionally drops an RTS on purpose; the retry *must* arrive with an
//! incremented attempt number, and even a single violation is proof of
//! misbehavior.
//!
//! Run with: `cargo run --release --example attempt_spoofing`

use airguard::core::monitor::MonitorConfig;
use airguard::core::CorrectConfig;
use airguard::mac::Selfish;
use airguard::net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    // Enable the probe on every receiver: 2 % of decoded RTS frames are
    // intentionally dropped.
    let cfg = CorrectConfig {
        monitor: MonitorConfig {
            probe_rate: 0.02,
            ..MonitorConfig::paper_default()
        },
        ..CorrectConfig::paper_default()
    };

    for (label, strategy) in [
        (
            "honest retries (BackoffScale pm=60)",
            Selfish::BackoffScale { pm: 60.0 },
        ),
        (
            "attempt spoofing (AttemptSpoof pm=60)",
            Selfish::AttemptSpoof { pm: 60.0 },
        ),
    ] {
        let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Correct)
            .correct_config(cfg)
            .strategy(strategy)
            .sim_time_secs(20)
            .seed(3)
            .run();
        let (receiver, monitor) = &report.monitors[0];
        let cheater = monitor
            .sender(airguard::sim::NodeId::new(3))
            .expect("node 3 sent packets");
        println!("{label}:");
        println!(
            "  receiver {receiver}: {} probes sent, {} proven attempt cheats, {:.1}% packets flagged",
            cheater.probes_sent, cheater.attempt_cheats, cheater.flagged_percent()
        );
        if cheater.attempt_cheats > 0 {
            println!("  => hard evidence of misbehavior (no statistics needed)\n");
        } else {
            println!("  => probes passed; only the statistical diagnosis applies\n");
        }
    }
}
