//! Extension demo (§4.4/§6): third-party collusion detection.
//!
//! A cheating sender pairs with a receiver that quietly strips penalties
//! from its assignments. The receiver's own monitor is compromised by
//! construction — but every piece of evidence is on the air: a bystander
//! replays the deviation check from overheard frames and notices that
//! the deviations it measures are never answered with penalties.
//!
//! Run with: `cargo run --release --example collusion_watch`

use airguard::core::CorrectConfig;
use airguard::mac::Selfish;
use airguard::net::topology::Flow;
use airguard::net::{NodePolicy, Simulation, SimulationConfig, Topology};
use airguard::phy::{PhyConfig, Position};
use airguard::sim::{MasterSeed, NodeId, SimDuration};

fn main() {
    let topology = Topology {
        positions: vec![
            Position::new(0.0, 0.0),   // receiver R (colluding)
            Position::new(120.0, 0.0), // sender S (cheating, PM = 80%)
            Position::new(0.0, 120.0), // honest sender H
            Position::new(60.0, 60.0), // observer O
        ],
        flows: vec![
            Flow {
                src: NodeId::new(1),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
            Flow {
                src: NodeId::new(2),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
        ],
    };
    let observer_cfg = CorrectConfig {
        observe_third_party: true,
        ..CorrectConfig::paper_default()
    };
    let policies = vec![
        NodePolicy::correct(
            NodeId::new(0),
            CorrectConfig::paper_default(),
            Selfish::NoPenalty,
        ),
        NodePolicy::correct(
            NodeId::new(1),
            CorrectConfig::paper_default(),
            Selfish::BackoffScale { pm: 80.0 },
        ),
        NodePolicy::correct(
            NodeId::new(2),
            CorrectConfig::paper_default(),
            Selfish::None,
        ),
        NodePolicy::correct(NodeId::new(3), observer_cfg, Selfish::None),
    ];
    let report = Simulation::new(
        SimulationConfig {
            phy: PhyConfig::paper_default(),
            horizon: SimDuration::from_secs(10),
            seed: MasterSeed::new(4),
            ..SimulationConfig::default()
        },
        topology,
        policies,
        vec![NodeId::new(1)],
    )
    .run();

    println!("colluding pair: sender n1 (PM=80%) + receiver n0 (penalties stripped)\n");
    println!(
        "throughput: cheater {:.1} Kbps vs honest {:.1} Kbps — the cheat pays, the receiver looks away",
        report.msb_throughput_bps() / 1e3,
        report.avg_throughput_bps() / 1e3
    );

    let (observer, pairs) = &report.observers[0];
    println!("\nthird-party observer {observer} verdicts:");
    for p in pairs {
        println!(
            "  {} -> {}: {} exchanges, {} deviations, {} unpunished => collusion suspected: {}",
            p.sender,
            p.receiver,
            p.measured,
            p.deviations,
            p.unpunished_deviations,
            p.collusion_suspected()
        );
    }
}
