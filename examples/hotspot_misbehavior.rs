//! The paper's motivating deployment: a public wireless hotspot.
//!
//! A trusted base station (the receiver) serves eight untrusted clients.
//! One client cheats at increasing intensity. We compare plain IEEE
//! 802.11 with the modified protocol side by side: under 802.11 the
//! cheater's gain comes straight out of the honest clients' throughput;
//! under the modified protocol the base station detects the cheating and
//! the correction scheme pins the cheater to its fair share.
//!
//! Run with: `cargo run --release --example hotspot_misbehavior`

use airguard::net::{Protocol, RunReport, ScenarioConfig, StandardScenario};

fn run(protocol: Protocol, pm: f64) -> RunReport {
    ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(protocol)
        .misbehavior_percent(pm)
        .sim_time_secs(10)
        .seed(7)
        .run()
}

fn main() {
    println!("public-hotspot scenario: 8 clients -> 1 base station, one client cheating\n");
    println!(
        "{:>5}  {:>12} {:>12}  {:>12} {:>12}  {:>9} {:>9}",
        "PM%", "802.11 MSB", "802.11 AVG", "CORRECT MSB", "CORRECT AVG", "detect%", "false%"
    );
    for pm in [0.0, 25.0, 50.0, 75.0, 90.0] {
        let dot11 = run(Protocol::Dot11, pm);
        let correct = run(Protocol::Correct, pm);
        println!(
            "{:>5.0}  {:>10.1}Kb {:>10.1}Kb  {:>10.1}Kb {:>10.1}Kb  {:>8.1}% {:>8.1}%",
            pm,
            dot11.msb_throughput_bps() / 1000.0,
            dot11.avg_throughput_bps() / 1000.0,
            correct.msb_throughput_bps() / 1000.0,
            correct.avg_throughput_bps() / 1000.0,
            correct.diagnosis().correct_diagnosis_percent(),
            correct.diagnosis().misdiagnosis_percent(),
        );
    }

    println!("\nreading the table:");
    println!("- 802.11 MSB grows with PM while 802.11 AVG shrinks: the cheat works.");
    println!("- CORRECT MSB stays near the fair share: the penalty scheme neutralizes it.");
    println!("- detect% rises sharply once the cheating is substantial, false% stays ~0.");
}
