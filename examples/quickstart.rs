//! Quickstart: detect and penalize one selfish sender.
//!
//! Builds the paper's Fig. 3 scenario — eight backlogged senders around
//! one receiver, node 3 counting down only 20 % of its assigned backoff
//! (PM = 80 %) — and runs the modified protocol for 10 simulated
//! seconds.
//!
//! Run with: `cargo run --release --example quickstart`

use airguard::net::{Protocol, ScenarioConfig, StandardScenario};
use airguard::sim::NodeId;

fn main() {
    let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .misbehavior_percent(80.0)
        .sim_time_secs(10)
        .seed(1)
        .run();

    println!(
        "simulated {}s, {} scheduler events",
        report.elapsed.as_secs_f64(),
        report.events
    );
    println!(
        "cheater (node 3) throughput : {:8.1} Kbps",
        report.msb_throughput_bps() / 1000.0
    );
    println!(
        "honest senders, average     : {:8.1} Kbps",
        report.avg_throughput_bps() / 1000.0
    );
    println!(
        "correct diagnosis           : {:8.2} % of the cheater's packets flagged",
        report.diagnosis().correct_diagnosis_percent()
    );
    println!(
        "misdiagnosis                : {:8.2} % of honest packets flagged",
        report.diagnosis().misdiagnosis_percent()
    );

    // The receiver's monitor keeps per-sender statistics.
    let (receiver, monitor) = &report.monitors[0];
    println!("\nreceiver {receiver} monitor report:");
    for s in &monitor.senders {
        println!(
            "  sender {}: {:4} packets, {:4} flagged ({:5.1} %), {:3} deviations{}",
            s.node,
            s.packets,
            s.flagged_packets,
            s.flagged_percent(),
            s.deviations,
            if s.node == NodeId::new(3) {
                "   <-- the cheater"
            } else {
                ""
            }
        );
    }
}
