//! Watch the protocol breathe: a traced two-node exchange.
//!
//! Wires up one sender and one receiver by hand (no scenario presets),
//! attaches a trace sink, runs a quarter of a second, and prints the
//! frame-by-frame timeline — RTS, CTS carrying the assigned backoff,
//! DATA, ACK — exactly the Fig. 1 interaction of the paper.
//!
//! Run with: `cargo run --release --example trace_exchange`
//!
//! Set `AIRGUARD_JSONL=<path>` to also export the typed event records
//! as JSON Lines (one event object per line), ready for `jq` or any
//! log pipeline.

use airguard::core::CorrectConfig;
use airguard::mac::Selfish;
use airguard::net::topology::Flow;
use airguard::net::{NodePolicy, Simulation, SimulationConfig, Topology};
use airguard::obs::{records_to_jsonl, EventSink};
use airguard::phy::{PhyConfig, Position};
use airguard::sim::trace::Trace;
use airguard::sim::{MasterSeed, NodeId, SimDuration};

fn main() {
    let topology = Topology {
        positions: vec![Position::new(0.0, 0.0), Position::new(150.0, 0.0)],
        flows: vec![Flow {
            src: NodeId::new(1),
            dst: NodeId::new(0),
            rate_bps: 2_000_000,
            payload: 512,
            measured: true,
        }],
    };
    let policies = vec![
        NodePolicy::correct(
            NodeId::new(0),
            CorrectConfig::paper_default(),
            Selfish::None,
        ),
        NodePolicy::correct(
            NodeId::new(1),
            CorrectConfig::paper_default(),
            Selfish::None,
        ),
    ];
    let cfg = SimulationConfig {
        phy: PhyConfig::deterministic(),
        horizon: SimDuration::from_millis(250),
        seed: MasterSeed::new(5),
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::new(cfg, topology, policies, vec![]);
    let sink = EventSink::enabled();
    let trace = Trace::from_sink(sink.clone());
    sim.set_trace(trace.clone());
    let report = sim.run();

    println!("frame-level timeline (first 30 trace events):\n");
    for ev in trace.events().into_iter().take(30) {
        println!("  {ev}");
    }
    println!(
        "\ndelivered {} packets in {} ms of virtual time",
        report.throughput.total_bytes() / 512,
        report.elapsed.as_micros() / 1000
    );

    if let Ok(path) = std::env::var("AIRGUARD_JSONL") {
        let records = sink.records();
        std::fs::write(&path, records_to_jsonl(&records)).expect("write JSONL export");
        println!("wrote {} typed events to {path}", records.len());
        println!("run summary: {}", report.summary.to_json());
    }
}
