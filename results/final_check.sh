#!/bin/bash
# Final verification pass: full test suite and bench suite with output
# captured at the repository root (as recorded in test_output.txt /
# bench_output.txt).
set -x
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | tail -5
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | tail -5
