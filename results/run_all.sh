#!/bin/bash
cd /root/repo
export AIRGUARD_SECS=50
run() { echo "=== $1 (seeds=$2) ==="; AIRGUARD_SEEDS=$2 ./target/release/$1 > results/$1.txt 2>&1; echo "done $1"; }
run intro_claim 30
run fig4 30
run fig5 30
run fig8 30
run fig6 15
run fig7 15
run fig9 10
run ablation_alpha 15
run ablation_threshold 15
run ablation_penalty 15
run ablation_adaptive 15
echo ALL_FIGURES_DONE
