#!/bin/bash
cd /root/repo
export AIRGUARD_SECS=50
run() { echo "=== $1 (seeds=$2) ==="; AIRGUARD_SEEDS=$2 ./target/release/$1 > results/$1.txt 2>&1; echo "done $1"; }
run ablation_access 15
run ablation_channel 15
run delay_report 15
run ablation_fading 15
run chaos 30
run detection_latency 30
echo ALL_EXTRAS_DONE
