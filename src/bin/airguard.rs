//! The `airguard` command-line tool. All logic lives in
//! [`airguard::cli`]; this binary only converts process arguments and
//! exit codes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match airguard::cli::parse(&refs) {
        Ok(cmd) => airguard::cli::execute(&cmd),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", airguard::cli::usage());
            std::process::exit(2);
        }
    }
}
