//! Command-line interface: hand-rolled argument parsing (the workspace
//! deliberately has no CLI-framework dependency) plus the command
//! implementations behind the `airguard` binary.
//!
//! ```text
//! airguard run  --scenario zero-flow --protocol correct --pm 80 --seconds 10 --seed 1
//! airguard sweep --scenario two-flow --seconds 10 --seeds 5
//! airguard topology --scenario random --seed 3
//! ```

use std::fmt;

use airguard_mac::AccessMode;
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one scenario and print its report.
    Run(RunArgs),
    /// Sweep PM from 0 to 100 and print the diagnosis/throughput table.
    Sweep(SweepArgs),
    /// Print a scenario's node placement and traffic matrix.
    Topology(TopologyArgs),
    /// Print usage.
    Help,
}

/// Arguments of `airguard run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Scenario preset.
    pub scenario: StandardScenario,
    /// Protocol for all nodes.
    pub protocol: Protocol,
    /// Percentage of misbehavior for the cheater set.
    pub pm: f64,
    /// Simulated seconds.
    pub seconds: u64,
    /// Master seed.
    pub seed: u64,
    /// Number of senders (star scenarios).
    pub senders: usize,
    /// Basic (two-way) access instead of RTS/CTS.
    pub basic: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            scenario: StandardScenario::ZeroFlow,
            protocol: Protocol::Correct,
            pm: 0.0,
            seconds: 10,
            seed: 1,
            senders: 8,
            basic: false,
        }
    }
}

/// Arguments of `airguard sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Scenario preset.
    pub scenario: StandardScenario,
    /// Simulated seconds per run.
    pub seconds: u64,
    /// Number of seeds averaged per data point.
    pub seeds: u64,
    /// PM step size in percent.
    pub step: f64,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            scenario: StandardScenario::ZeroFlow,
            seconds: 10,
            seeds: 3,
            step: 20.0,
        }
    }
}

/// Arguments of `airguard topology`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyArgs {
    /// Scenario preset.
    pub scenario: StandardScenario,
    /// Seed (placement of the random scenario).
    pub seed: u64,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError(String);

impl fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseCliError {}

fn err(msg: impl Into<String>) -> ParseCliError {
    ParseCliError(msg.into())
}

fn parse_scenario(v: &str) -> Result<StandardScenario, ParseCliError> {
    match v {
        "zero-flow" | "zero" => Ok(StandardScenario::ZeroFlow),
        "two-flow" | "two" => Ok(StandardScenario::TwoFlow),
        "random" => Ok(StandardScenario::Random),
        other => Err(err(format!(
            "unknown scenario '{other}' (expected zero-flow, two-flow, or random)"
        ))),
    }
}

fn parse_protocol(v: &str) -> Result<Protocol, ParseCliError> {
    match v {
        "correct" => Ok(Protocol::Correct),
        "dot11" | "802.11" => Ok(Protocol::Dot11),
        other => Err(err(format!(
            "unknown protocol '{other}' (expected correct or dot11)"
        ))),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, ParseCliError> {
    it.next()
        .ok_or_else(|| err(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, ParseCliError> {
    v.parse()
        .map_err(|_| err(format!("{flag}: '{v}' is not a valid number")))
}

/// Parses a full argument list (without the program name).
///
/// # Errors
///
/// Returns a [`ParseCliError`] with a user-facing message for unknown
/// commands, unknown flags, or malformed values.
pub fn parse(args: &[&str]) -> Result<Command, ParseCliError> {
    let mut it = args.iter().copied();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "run" => {
            let mut a = RunArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--scenario" => a.scenario = parse_scenario(take_value(flag, &mut it)?)?,
                    "--protocol" => a.protocol = parse_protocol(take_value(flag, &mut it)?)?,
                    "--pm" => a.pm = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--seconds" => a.seconds = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--seed" => a.seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--senders" => a.senders = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--basic" => a.basic = true,
                    other => return Err(err(format!("run: unknown flag '{other}'"))),
                }
            }
            if !(0.0..=100.0).contains(&a.pm) {
                return Err(err("--pm must be between 0 and 100"));
            }
            Ok(Command::Run(a))
        }
        "sweep" => {
            let mut a = SweepArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--scenario" => a.scenario = parse_scenario(take_value(flag, &mut it)?)?,
                    "--seconds" => a.seconds = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--seeds" => a.seeds = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--step" => a.step = parse_num(flag, take_value(flag, &mut it)?)?,
                    other => return Err(err(format!("sweep: unknown flag '{other}'"))),
                }
            }
            if a.step <= 0.0 {
                return Err(err("--step must be positive"));
            }
            Ok(Command::Sweep(a))
        }
        "topology" => {
            let mut a = TopologyArgs {
                scenario: StandardScenario::ZeroFlow,
                seed: 1,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--scenario" => a.scenario = parse_scenario(take_value(flag, &mut it)?)?,
                    "--seed" => a.seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    other => return Err(err(format!("topology: unknown flag '{other}'"))),
                }
            }
            Ok(Command::Topology(a))
        }
        other => Err(err(format!("unknown command '{other}' (try 'help')"))),
    }
}

/// The usage text printed by `airguard help`.
#[must_use]
pub fn usage() -> &'static str {
    "airguard — MAC-layer misbehavior detection (DSN'03 reproduction)

USAGE:
  airguard run      [--scenario zero-flow|two-flow|random] [--protocol correct|dot11]
                    [--pm <0-100>] [--seconds N] [--seed N] [--senders N] [--basic]
  airguard sweep    [--scenario ...] [--seconds N] [--seeds N] [--step PCT]
  airguard topology [--scenario ...] [--seed N]
  airguard help
"
}

/// Executes a parsed command, printing to stdout.
pub fn execute(command: &Command) {
    match command {
        Command::Help => println!("{}", usage()),
        Command::Run(a) => {
            let mut cfg = ScenarioConfig::new(a.scenario)
                .protocol(a.protocol)
                .misbehavior_percent(a.pm)
                .n_senders(a.senders)
                .sim_time_secs(a.seconds)
                .seed(a.seed);
            if a.basic {
                cfg = cfg.access(AccessMode::Basic);
            }
            let r = cfg.run();
            println!(
                "simulated {:.0}s  events={}  delivered={} packets",
                r.elapsed.as_secs_f64(),
                r.events,
                r.diagnosis()
                    .total_packets()
                    .max(r.throughput.total_bytes() / 512),
            );
            println!(
                "throughput: MSB {:.1} Kbps, AVG {:.1} Kbps, fairness {:.3}",
                r.msb_throughput_bps() / 1e3,
                r.avg_throughput_bps() / 1e3,
                r.fairness_index()
            );
            if a.protocol == Protocol::Correct {
                println!(
                    "diagnosis: correct {:.1}%, misdiagnosis {:.1}%",
                    r.diagnosis().correct_diagnosis_percent(),
                    r.diagnosis().misdiagnosis_percent()
                );
            }
            println!(
                "delay: MSB {:.1} ms, AVG {:.1} ms",
                r.msb_delay_ms(),
                r.avg_delay_ms()
            );
        }
        Command::Sweep(a) => {
            println!("PM%   correct%  misdiag%  MSB(Kbps)  AVG(Kbps)");
            let mut pm = 0.0;
            while pm <= 100.0 {
                let seeds: Vec<u64> = (1..=a.seeds).collect();
                let (mut cd, mut md, mut msb, mut avg) = (0.0, 0.0, 0.0, 0.0);
                for &s in &seeds {
                    let r = ScenarioConfig::new(a.scenario)
                        .protocol(Protocol::Correct)
                        .misbehavior_percent(pm)
                        .sim_time_secs(a.seconds)
                        .seed(s)
                        .run();
                    cd += r.diagnosis().correct_diagnosis_percent();
                    md += r.diagnosis().misdiagnosis_percent();
                    msb += r.msb_throughput_bps() / 1e3;
                    avg += r.avg_throughput_bps() / 1e3;
                }
                let n = seeds.len() as f64;
                println!(
                    "{pm:>4.0}  {:>8.2}  {:>8.2}  {:>9.1}  {:>9.1}",
                    cd / n,
                    md / n,
                    msb / n,
                    avg / n
                );
                pm += a.step;
            }
        }
        Command::Topology(a) => {
            let cfg = ScenarioConfig::new(a.scenario).seed(a.seed);
            let topo = cfg.build_topology();
            println!("{} nodes:", topo.node_count());
            for (i, p) in topo.positions.iter().enumerate() {
                println!("  n{i} at {p}");
            }
            println!("{} flows:", topo.flows.len());
            for f in &topo.flows {
                println!(
                    "  {} -> {}  {} b/s, {} B{}",
                    f.src,
                    f.dst,
                    f.rate_bps,
                    f.payload,
                    if f.measured { "" } else { "  (interferer)" }
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["help"]), Ok(Command::Help));
        assert_eq!(parse(&["--help"]), Ok(Command::Help));
    }

    #[test]
    fn run_defaults_and_flags() {
        let cmd = parse(&["run"]).unwrap();
        assert_eq!(cmd, Command::Run(RunArgs::default()));
        let cmd = parse(&[
            "run",
            "--scenario",
            "two-flow",
            "--protocol",
            "dot11",
            "--pm",
            "45.5",
            "--seconds",
            "7",
            "--seed",
            "99",
            "--senders",
            "16",
            "--basic",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run(RunArgs {
                scenario: StandardScenario::TwoFlow,
                protocol: Protocol::Dot11,
                pm: 45.5,
                seconds: 7,
                seed: 99,
                senders: 16,
                basic: true,
            })
        );
    }

    #[test]
    fn scenario_aliases() {
        assert!(matches!(
            parse(&["run", "--scenario", "zero"]),
            Ok(Command::Run(a)) if a.scenario == StandardScenario::ZeroFlow
        ));
        assert!(matches!(
            parse(&["run", "--protocol", "802.11"]),
            Ok(Command::Run(a)) if a.protocol == Protocol::Dot11
        ));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run", "--scenario", "mars"]).is_err());
        assert!(parse(&["run", "--pm"]).is_err(), "missing value");
        assert!(parse(&["run", "--pm", "abc"]).is_err());
        assert!(parse(&["run", "--pm", "150"]).is_err(), "out of range");
        assert!(parse(&["sweep", "--step", "0"]).is_err());
        assert!(parse(&["run", "--bogus"]).is_err());
    }

    #[test]
    fn sweep_and_topology_parse() {
        let cmd = parse(&[
            "sweep",
            "--scenario",
            "random",
            "--seeds",
            "2",
            "--step",
            "50",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sweep(SweepArgs {
                scenario: StandardScenario::Random,
                seconds: 10,
                seeds: 2,
                step: 50.0,
            })
        );
        let cmd = parse(&["topology", "--scenario", "random", "--seed", "5"]).unwrap();
        assert_eq!(
            cmd,
            Command::Topology(TopologyArgs {
                scenario: StandardScenario::Random,
                seed: 5,
            })
        );
    }

    #[test]
    fn usage_mentions_every_command() {
        for word in ["run", "sweep", "topology", "help"] {
            assert!(usage().contains(word), "usage missing {word}");
        }
    }
}

#[cfg(test)]
mod execute_tests {
    use super::*;

    #[test]
    fn execute_run_and_topology_do_not_panic() {
        // Tiny run: 4 senders, 1 second.
        let cmd = parse(&[
            "run",
            "--senders",
            "4",
            "--pm",
            "50",
            "--seconds",
            "1",
            "--seed",
            "3",
        ])
        .unwrap();
        execute(&cmd);
        let cmd = parse(&["topology", "--scenario", "random", "--seed", "2"]).unwrap();
        execute(&cmd);
        execute(&Command::Help);
    }

    #[test]
    fn execute_basic_access_run() {
        let cmd = parse(&["run", "--senders", "2", "--seconds", "1", "--basic"]).unwrap();
        execute(&cmd);
    }

    #[test]
    fn execute_sweep_small() {
        let cmd = parse(&["sweep", "--step", "100", "--seeds", "1", "--seconds", "1"]).unwrap();
        execute(&cmd);
    }
}
