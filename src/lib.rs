//! # airguard — MAC-layer misbehavior detection for 802.11 DCF
//!
//! Facade crate for the `airguard` workspace, a full reproduction of
//! Kyasanur & Vaidya, *"Detection and Handling of MAC Layer Misbehavior
//! in Wireless Networks"* (DSN 2003).
//!
//! The workspace implements, from scratch:
//!
//! * a deterministic discrete-event simulation kernel ([`sim`]);
//! * a radio substrate with the paper's shadowing channel model
//!   ([`phy`]);
//! * a complete IEEE 802.11 DCF MAC — RTS/CTS/DATA/ACK, NAV,
//!   binary-exponential backoff — plus selfish misbehavior strategies
//!   ([`mac`]);
//! * the paper's contribution: receiver-assigned backoff, deviation
//!   detection, the correction (penalty) scheme, and the diagnosis
//!   scheme ([`core`]);
//! * scenario tooling reproducing the paper's topologies and traffic
//!   ([`net`]); and
//! * the measurement machinery for its metrics ([`metrics`]).
//!
//! # Quickstart
//!
//! Run the paper's Fig. 3 scenario (8 senders around one receiver,
//! sender 3 misbehaving at PM = 80 %) under the modified protocol and
//! inspect what the receiver concluded:
//!
//! ```
//! use airguard::net::{Protocol, ScenarioConfig, StandardScenario};
//!
//! let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
//!     .protocol(Protocol::Correct)
//!     .misbehavior_percent(80.0)
//!     .sim_time_secs(2)
//!     .seed(1)
//!     .run();
//!
//! // Packets from the cheater (node 3) are flagged with high probability…
//! assert!(report.diagnosis().correct_diagnosis_percent() > 50.0);
//! // …honest senders are not…
//! assert!(report.diagnosis().misdiagnosis_percent() < 5.0);
//! // …and the correction scheme keeps the cheater near its fair share.
//! assert!(report.msb_throughput_bps() < 2.0 * report.avg_throughput_bps());
//! ```
//!
//! The same scenario under unmodified IEEE 802.11 shows why the scheme
//! matters — the cheater grabs a large multiple of its fair share:
//!
//! ```
//! use airguard::net::{Protocol, ScenarioConfig, StandardScenario};
//!
//! let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
//!     .protocol(Protocol::Dot11)
//!     .misbehavior_percent(80.0)
//!     .sim_time_secs(2)
//!     .seed(1)
//!     .run();
//! assert!(report.msb_throughput_bps() > 3.0 * report.avg_throughput_bps());
//! ```
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! harnesses that regenerate every figure in the paper's evaluation.

#![forbid(unsafe_code)]

pub mod cli;

pub use airguard_core as core;
pub use airguard_exp as exp;
pub use airguard_mac as mac;
pub use airguard_metrics as metrics;
pub use airguard_net as net;
pub use airguard_obs as obs;
pub use airguard_phy as phy;
pub use airguard_sim as sim;
