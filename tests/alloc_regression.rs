//! Allocation regression gate for the simulation hot path.
//!
//! The hot-path overhaul (slab scheduler, pooled `FrameRef`s, reused
//! effect/listener scratch buffers) makes the steady-state exchange loop
//! allocation-free: once every pool, buffer, and accumulator has warmed
//! up, delivering another DATA frame costs zero heap allocations.
//!
//! This test pins that property with a counting global allocator: two
//! runs of the same seeded scenario differing only in horizon must
//! allocate the same number of times — the extra simulated seconds (and
//! the thousands of extra delivered frames they carry) ride entirely on
//! recycled memory.
//!
//! The file is its own integration-test binary on purpose: the counter
//! is global, so no other test may share the process.

// The counting allocator needs `unsafe impl GlobalAlloc`; this test
// binary is the one sanctioned exception to the workspace's deny.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use airguard::net::{Protocol, ScenarioConfig, StandardScenario};

/// System allocator wrapper that counts allocation calls (`alloc` and
/// the alloc half of `realloc`; frees are not interesting here).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// lint:allow(unit-mixed-arith) — raw allocator plumbing, no units involved
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The determinism-test scenario at a given horizon: four senders to one
/// AP, two of them misbehaving, receiver-assigned protocol.
fn scenario(secs: u64) -> ScenarioConfig {
    ScenarioConfig::new(StandardScenario::TwoFlow)
        .protocol(Protocol::Correct)
        .n_senders(4)
        .misbehavior_percent(50.0)
        .sim_time_secs(secs)
        .seed(7)
}

/// Allocation calls and delivered packets for one full run.
fn measure(secs: u64) -> (u64, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = scenario(secs).run();
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    (allocs, report.tally.total_packets())
}

#[test]
fn steady_state_delivery_allocates_nothing() {
    // Warm-up run so lazy process-level allocations (thread-locals,
    // formatting machinery, etc.) don't land in either measurement.
    let _ = measure(1);

    let (short_allocs, short_packets) = measure(2);
    let (long_allocs, long_packets) = measure(6);

    let extra_packets = long_packets.saturating_sub(short_packets);
    assert!(
        extra_packets > 1_000,
        "horizon extension must add real traffic, got {extra_packets} packets"
    );

    // Both runs pay the same setup cost (same topology, same pools
    // growing to the same high-water marks). The longer run's extra
    // deliveries must not allocate: a per-frame allocation would show
    // up here thousands of times over. The small slack absorbs
    // incidental one-off growth (a container doubling once more on the
    // longer run), which is exactly the kind of cost that does not
    // scale per frame.
    let extra_allocs = long_allocs.saturating_sub(short_allocs);
    assert!(
        extra_allocs < 64,
        "steady-state leak: {extra_allocs} extra allocations for {extra_packets} extra \
         delivered packets ({short_allocs} short-run vs {long_allocs} long-run)"
    );
}
