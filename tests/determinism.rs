//! Determinism regression: the same seeded scenario, run twice, must
//! produce byte-identical event traces and identical reports.
//!
//! This is the runtime complement to the static rules `airguard-lint`
//! enforces (no wall clocks, no ambient RNG, no hash-ordered iteration
//! in simulation crates): if any nondeterminism slips past the lexical
//! rules — an unseeded source, an order-sensitive container behind a
//! type alias — the trace digests diverge here.

use airguard_net::{
    BurstLoss, ClockDrift, Corruption, CrashEvent, FaultPlan, Protocol, ScenarioConfig,
    StandardScenario,
};
use airguard_sim::trace::TraceEvent;
use airguard_sim::SimDuration;

/// FNV-1a over every event's time, category, and detail.
fn digest(events: &[TraceEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in events {
        eat(e.time.as_micros().to_le_bytes().as_slice());
        eat(e.category.as_bytes());
        eat(e.detail.as_bytes());
        eat(b"\n");
    }
    h
}

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig::new(StandardScenario::TwoFlow)
        .protocol(Protocol::Correct)
        .n_senders(4)
        .misbehavior_percent(50.0)
        .sim_time_secs(2)
        .seed(seed)
}

#[test]
fn same_seed_replays_to_identical_trace_digest() {
    let cfg = scenario(42);
    let (r1, t1) = cfg.run_traced();
    let (r2, t2) = cfg.run_traced();

    assert!(!t1.is_empty(), "traced run recorded no events");
    assert_eq!(t1.len(), t2.len(), "trace lengths diverged");
    assert_eq!(digest(&t1), digest(&t2), "trace digests diverged");

    assert_eq!(r1.events, r2.events);
    assert_eq!(r1.throughput.total_bytes(), r2.throughput.total_bytes());
    assert_eq!(r1.tally, r2.tally);
    assert_eq!(r1.counters, r2.counters);
}

#[test]
fn same_seed_replays_to_byte_identical_run_report() {
    // The exported run summary — config digest, counters, histograms —
    // must serialize byte-for-byte identically across replays; this is
    // what makes the JSONL reports diffable between CI runs.
    let cfg = scenario(42);
    let j1 = cfg.run().summary.to_json();
    let j2 = cfg.run().summary.to_json();
    assert_eq!(j1, j2, "run-report snapshots diverged");
    assert!(
        j1.contains("\"counters\":{") && j1.contains("mac.rts_sent"),
        "summary must embed the counter snapshot: {j1}"
    );
}

#[test]
fn every_fault_injector_combination_replays_byte_identically() {
    // The fault layer draws from its own "fault.*" seed streams, so each
    // injector — alone or composed — must leave the run as replayable as
    // the unfaulted baseline: same seed + same plan => byte-identical
    // summary JSON. A zero-intensity plan must normalize away entirely
    // and reproduce the baseline bytes (DESIGN.md §12's zero-cost rule).
    let burst = BurstLoss {
        p_enter: 0.02,
        p_exit: 0.25,
        loss_good: 0.01,
        loss_bad: 0.3,
    };
    let churn = CrashEvent {
        node: 1,
        at: SimDuration::from_millis(500),
        down_for: SimDuration::from_millis(200),
        preserve_monitor: false,
    };
    let corruption = Corruption {
        backoff_prob: 0.02,
        backoff_max_delta: 8,
        attempt_prob: 0.02,
        attempt_max_delta: 2,
    };
    let drift = ClockDrift {
        per_mille: 10,
        nodes: Vec::new(),
    };
    let combos: [(&str, FaultPlan); 5] = [
        (
            "burst-loss only",
            FaultPlan {
                burst_loss: Some(burst),
                ..FaultPlan::default()
            },
        ),
        (
            "churn only",
            FaultPlan {
                churn: vec![churn],
                ..FaultPlan::default()
            },
        ),
        (
            "corruption only",
            FaultPlan {
                corruption: Some(corruption),
                ..FaultPlan::default()
            },
        ),
        (
            "drift only",
            FaultPlan {
                clock_drift: Some(drift.clone()),
                ..FaultPlan::default()
            },
        ),
        (
            "all injectors",
            FaultPlan {
                burst_loss: Some(burst),
                churn: vec![churn],
                corruption: Some(corruption),
                clock_drift: Some(drift),
            },
        ),
    ];

    let baseline = scenario(42).run().summary.to_json();
    for (name, plan) in combos {
        let cfg = scenario(42).fault(plan).expect("valid plan");
        let j1 = cfg.run().summary.to_json();
        let j2 = cfg.run().summary.to_json();
        assert_eq!(j1, j2, "{name}: faulted replay diverged");
        assert_ne!(
            j1, baseline,
            "{name}: injector left no trace on the run at all"
        );
    }

    // A complete but all-zero plan is indistinguishable from no plan.
    let inert = FaultPlan {
        burst_loss: Some(BurstLoss {
            p_enter: 0.0,
            p_exit: 0.25,
            loss_good: 0.0,
            loss_bad: 0.0,
        }),
        churn: Vec::new(),
        corruption: Some(Corruption {
            backoff_prob: 0.0,
            backoff_max_delta: 8,
            attempt_prob: 0.0,
            attempt_max_delta: 2,
        }),
        clock_drift: Some(ClockDrift {
            per_mille: 0,
            nodes: Vec::new(),
        }),
    };
    let zero = scenario(42).fault(inert).expect("inert plan is valid");
    assert_eq!(
        zero.run().summary.to_json(),
        baseline,
        "zero-intensity plan must be byte-identical to the unfaulted baseline"
    );
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the digest actually discriminates: two seeds
    // giving identical traces would mean the seed is ignored.
    let (_, t1) = scenario(1).run_traced();
    let (_, t2) = scenario(2).run_traced();
    assert_ne!(digest(&t1), digest(&t2), "seed does not influence the run");
}
