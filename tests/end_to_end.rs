//! End-to-end scenario tests spanning every crate: kernel → PHY → MAC →
//! detection scheme → scenario runner → metrics.

use airguard::core::CorrectConfig;
use airguard::mac::Selfish;
use airguard::net::{Protocol, RunReport, ScenarioConfig, StandardScenario};
use airguard::phy::PhyConfig;
use airguard::sim::NodeId;

fn zero_flow(protocol: Protocol, pm: f64, secs: u64, seed: u64) -> RunReport {
    ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(protocol)
        .misbehavior_percent(pm)
        .sim_time_secs(secs)
        .seed(seed)
        .run()
}

#[test]
fn honest_network_has_no_deviations_or_flags() {
    let report = zero_flow(Protocol::Correct, 0.0, 5, 1);
    assert_eq!(report.diagnosis().misdiagnosis_percent(), 0.0);
    for (_, monitor) in &report.monitors {
        for s in &monitor.senders {
            assert_eq!(s.flagged_packets, 0, "sender {} flagged", s.node);
        }
    }
}

#[test]
fn cheater_detected_and_honest_spared_under_correct() {
    let report = zero_flow(Protocol::Correct, 80.0, 5, 2);
    assert!(
        report.diagnosis().correct_diagnosis_percent() > 80.0,
        "PM=80 should be flagged on most packets, got {}",
        report.diagnosis().correct_diagnosis_percent()
    );
    assert!(
        report.diagnosis().misdiagnosis_percent() < 2.0,
        "misdiagnosis {}",
        report.diagnosis().misdiagnosis_percent()
    );
}

#[test]
fn correction_pins_cheater_to_fair_share() {
    let fair = zero_flow(Protocol::Correct, 0.0, 5, 3).avg_throughput_bps();
    let cheat = zero_flow(Protocol::Correct, 60.0, 5, 3);
    let msb = cheat.msb_throughput_bps();
    assert!(
        msb < 1.5 * fair,
        "corrected cheater at {msb} vs fair {fair}"
    );
    // And the honest population is not collateral damage.
    assert!(cheat.avg_throughput_bps() > 0.85 * fair);
}

#[test]
fn dot11_rewards_the_same_cheater() {
    let report = zero_flow(Protocol::Dot11, 60.0, 5, 3);
    assert!(
        report.msb_throughput_bps() > 1.8 * report.avg_throughput_bps(),
        "under 802.11 PM=60 should pay off: MSB={} AVG={}",
        report.msb_throughput_bps(),
        report.avg_throughput_bps()
    );
}

#[test]
fn correct_protocol_costs_no_capacity_without_misbehavior() {
    let dot11 = zero_flow(Protocol::Dot11, 0.0, 5, 4).avg_throughput_bps();
    let correct = zero_flow(Protocol::Correct, 0.0, 5, 4).avg_throughput_bps();
    let ratio = correct / dot11;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "CORRECT vs 802.11 honest throughput ratio {ratio}"
    );
}

#[test]
fn fairness_is_high_without_misbehavior() {
    for protocol in [Protocol::Dot11, Protocol::Correct] {
        let report = zero_flow(protocol, 0.0, 5, 5);
        assert!(
            report.fairness_index() > 0.9,
            "{protocol:?} fairness {}",
            report.fairness_index()
        );
    }
}

#[test]
fn two_flow_interference_raises_misdiagnosis_but_keeps_detection() {
    let report = ScenarioConfig::new(StandardScenario::TwoFlow)
        .protocol(Protocol::Correct)
        .misbehavior_percent(60.0)
        .sim_time_secs(5)
        .seed(6)
        .run();
    assert!(report.diagnosis().correct_diagnosis_percent() > 70.0);
    // The paper's documented tradeoff: nonzero but bounded misdiagnosis.
    assert!(report.diagnosis().misdiagnosis_percent() < 40.0);
}

#[test]
fn quarter_window_strategy_reproduces_intro_claim_direction() {
    let fair = zero_flow(Protocol::Dot11, 0.0, 5, 7).avg_throughput_bps();
    let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Dot11)
        .strategy(Selfish::QuarterWindow)
        .sim_time_secs(5)
        .seed(7)
        .run();
    assert!(report.msb_throughput_bps() > 1.5 * fair);
    assert!(report.avg_throughput_bps() < 0.9 * fair);
}

#[test]
fn random_topology_end_to_end() {
    let report = ScenarioConfig::new(StandardScenario::Random)
        .protocol(Protocol::Correct)
        .misbehavior_percent(70.0)
        .sim_time_secs(5)
        .seed(8)
        .run();
    assert_eq!(report.misbehaving.len(), 5);
    assert!(report.throughput.total_bytes() > 0);
    assert!(
        report.diagnosis().correct_diagnosis_percent() > report.diagnosis().misdiagnosis_percent(),
        "detection must beat the false-positive rate"
    );
}

#[test]
fn deterministic_channel_gives_bitwise_reproducibility() {
    let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .misbehavior_percent(50.0)
        .phy(PhyConfig::deterministic())
        .sim_time_secs(3)
        .seed(9);
    let a = cfg.run();
    let b = cfg.run();
    assert_eq!(a.events, b.events);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.tally, b.tally);
}

#[test]
fn attempt_spoofer_is_caught_by_probes_only() {
    let mut cc = CorrectConfig::paper_default();
    cc.monitor.probe_rate = 0.02;
    let spoof = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .correct_config(cc)
        .strategy(Selfish::AttemptSpoof { pm: 60.0 })
        .sim_time_secs(10)
        .seed(10)
        .run();
    let honest = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .correct_config(cc)
        .misbehavior_percent(60.0)
        .sim_time_secs(10)
        .seed(10)
        .run();
    let cheats_of = |r: &RunReport| {
        r.monitors[0]
            .1
            .sender(NodeId::new(3))
            .map_or(0, |s| s.attempt_cheats)
    };
    assert!(cheats_of(&spoof) > 0, "spoofer must be caught");
    assert_eq!(cheats_of(&honest), 0, "honest attempt numbers pass probes");
}

#[test]
fn throughput_never_exceeds_channel_capacity() {
    for seed in 1..=3 {
        let report = zero_flow(Protocol::Dot11, 100.0, 3, seed);
        let total: f64 = report
            .measured_senders
            .iter()
            .map(|&s| report.throughput.sender_throughput_bps(s, report.elapsed))
            .sum();
        assert!(total < 2.0e6, "aggregate {total} b/s exceeds the channel");
    }
}

#[test]
fn diagnosis_series_covers_the_run() {
    let report = zero_flow(Protocol::Correct, 80.0, 5, 11);
    assert_eq!(report.series.bins().len(), 5);
    let flagged_after_warmup: u64 = report.series.bins()[1..].iter().map(|b| b.flagged).sum();
    assert!(flagged_after_warmup > 0, "flags must appear after warmup");
}
