//! Golden-digest regression for the detector refactor: the default
//! (window) detector behind the `DeviationDetector` trait must
//! reproduce the pre-refactor `RunSummary` byte-for-byte.
//!
//! The constants below were captured on the pre-refactor tree (PR 8
//! head) by running this same harness and recording the FNV-1a digest
//! of `run().summary.to_json()` for every cell: the fig4 grid
//! (ZERO-FLOW / TWO-FLOW × PM) and the chaos grid (fault intensity ×
//! PM), downscaled to 2 simulated seconds, seeds {1..4}. Any behavior
//! change in the default detection path — however small — shows up
//! here as a digest mismatch, with the full actual table printed for
//! comparison.

use airguard_net::{
    BurstLoss, ClockDrift, Corruption, CrashEvent, FaultPlan, Protocol, ScenarioConfig,
    StandardScenario,
};
use airguard_sim::SimDuration;

const SEEDS: [u64; 4] = [1, 2, 3, 4];

/// FNV-1a over the summary JSON bytes.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mirrors `chaos::plan` in airguard-bench: the composite all-injector
/// plan at one intensity (the two must stay in sync so this guards the
/// exact cells the chaos figure runs).
fn chaos_plan(intensity: u16) -> FaultPlan {
    let f = f64::from(intensity) / 100.0;
    let churn = if intensity == 0 {
        Vec::new()
    } else {
        vec![CrashEvent {
            node: 1,
            at: SimDuration::from_secs(1),
            down_for: SimDuration::from_micros(u64::from(intensity) * 20_000),
            preserve_monitor: intensity < 100,
        }]
    };
    FaultPlan {
        burst_loss: Some(BurstLoss {
            p_enter: 0.02 * f,
            p_exit: 0.25,
            loss_good: 0.005 * f,
            loss_bad: 0.4 * f,
        }),
        churn,
        corruption: Some(Corruption {
            backoff_prob: 0.03 * f,
            backoff_max_delta: 8,
            attempt_prob: 0.03 * f,
            attempt_max_delta: 2,
        }),
        clock_drift: Some(ClockDrift {
            per_mille: i32::from(intensity) / 5,
            nodes: Vec::new(),
        }),
    }
}

fn digest_of(cfg: &ScenarioConfig) -> u64 {
    fnv(cfg.run().summary.to_json().as_bytes())
}

/// Runs every (label, cfg) cell across the seed set and asserts the
/// digests match the pinned table, printing the full actual table on
/// any mismatch so regeneration is a copy-paste.
fn check(golden: &[(&str, u64)], cells: &[(String, ScenarioConfig)]) {
    let mut actual = Vec::new();
    for (label, cfg) in cells {
        for seed in SEEDS {
            let d = digest_of(&cfg.clone().seed(seed));
            actual.push((format!("{label}/seed{seed}"), d));
        }
    }
    let rendered: String = actual
        .iter()
        .map(|(l, d)| format!("    (\"{l}\", {d:#018x}),\n"))
        .collect();
    assert_eq!(
        golden.len(),
        actual.len(),
        "golden table size mismatch; actual table:\n{rendered}"
    );
    for ((gl, gd), (al, ad)) in golden.iter().zip(&actual) {
        assert_eq!(gl, al, "cell order changed; actual table:\n{rendered}");
        assert_eq!(
            *gd, *ad,
            "digest changed for {gl} (expected {gd:#018x}, got {ad:#018x}); \
             actual table:\n{rendered}"
        );
    }
}

#[test]
fn fig4_grid_summaries_match_pre_refactor_golden_digests() {
    let mut cells = Vec::new();
    for sc in [StandardScenario::ZeroFlow, StandardScenario::TwoFlow] {
        let key = match sc {
            StandardScenario::ZeroFlow => "zero",
            _ => "two",
        };
        for pm in [0.0, 30.0, 60.0, 90.0] {
            cells.push((
                format!("fig4/{key}/pm{pm:.0}"),
                ScenarioConfig::new(sc)
                    .protocol(Protocol::Correct)
                    .misbehavior_percent(pm)
                    .sim_time_secs(2),
            ));
        }
    }
    check(GOLDEN_FIG4, &cells);
}

#[test]
fn chaos_grid_summaries_match_pre_refactor_golden_digests() {
    let mut cells = Vec::new();
    for intensity in [0u16, 25, 50, 100] {
        for pm in [0.0, 50.0, 90.0] {
            let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .misbehavior_percent(pm)
                .sim_time_secs(2)
                .fault(chaos_plan(intensity))
                .expect("chaos plan targets node 1 of the standard topology");
            cells.push((format!("chaos/f{intensity}/pm{pm:.0}"), cfg));
        }
    }
    check(GOLDEN_CHAOS, &cells);
}

#[rustfmt::skip]
const GOLDEN_FIG4: &[(&str, u64)] = &[
    ("fig4/zero/pm0/seed1", 0x5ed886ddfeb05d09),
    ("fig4/zero/pm0/seed2", 0x5182f5f94df83de6),
    ("fig4/zero/pm0/seed3", 0xa66576e2bac423a2),
    ("fig4/zero/pm0/seed4", 0xd8ccee6fa01daa28),
    ("fig4/zero/pm30/seed1", 0xe97ef6d08fa3f478),
    ("fig4/zero/pm30/seed2", 0xe66d4d555b627275),
    ("fig4/zero/pm30/seed3", 0x184604d50e67bd54),
    ("fig4/zero/pm30/seed4", 0xadcde9b9023ffa3d),
    ("fig4/zero/pm60/seed1", 0x3113ce1cfacd59b8),
    ("fig4/zero/pm60/seed2", 0x6b5c0305d6444c24),
    ("fig4/zero/pm60/seed3", 0xec60c6335128ea31),
    ("fig4/zero/pm60/seed4", 0x20803e147eb3f931),
    ("fig4/zero/pm90/seed1", 0xe6cca3bd0835310a),
    ("fig4/zero/pm90/seed2", 0x628c9f6c4ce1a483),
    ("fig4/zero/pm90/seed3", 0x0ad562a93642f8a3),
    ("fig4/zero/pm90/seed4", 0x81541e090e2ac6c3),
    ("fig4/two/pm0/seed1", 0xb5a9f863c0bcc8cc),
    ("fig4/two/pm0/seed2", 0x1fdc48fb3773381c),
    ("fig4/two/pm0/seed3", 0x0fd7d9d001661f40),
    ("fig4/two/pm0/seed4", 0xebb1711e2da248f8),
    ("fig4/two/pm30/seed1", 0x524bb844e5bdd56e),
    ("fig4/two/pm30/seed2", 0x7105f9b4d6857568),
    ("fig4/two/pm30/seed3", 0x165435de5134e216),
    ("fig4/two/pm30/seed4", 0x1022d77a85a0fcca),
    ("fig4/two/pm60/seed1", 0xb69a278cd097f931),
    ("fig4/two/pm60/seed2", 0xe0058dd5d00852b6),
    ("fig4/two/pm60/seed3", 0x224a71358cb136e3),
    ("fig4/two/pm60/seed4", 0x26fe3acd8c0e1848),
    ("fig4/two/pm90/seed1", 0x6f78cd19dec326f5),
    ("fig4/two/pm90/seed2", 0x85fbdd76e337939e),
    ("fig4/two/pm90/seed3", 0x29aa623b823b1fba),
    ("fig4/two/pm90/seed4", 0xf6b33021529476a0),
];

#[rustfmt::skip]
const GOLDEN_CHAOS: &[(&str, u64)] = &[
    ("chaos/f0/pm0/seed1", 0x5ed886ddfeb05d09),
    ("chaos/f0/pm0/seed2", 0x5182f5f94df83de6),
    ("chaos/f0/pm0/seed3", 0xa66576e2bac423a2),
    ("chaos/f0/pm0/seed4", 0xd8ccee6fa01daa28),
    ("chaos/f0/pm50/seed1", 0x5200a2ea01870a40),
    ("chaos/f0/pm50/seed2", 0x64a85bd0963d3148),
    ("chaos/f0/pm50/seed3", 0xdda5bb956c883637),
    ("chaos/f0/pm50/seed4", 0xdf59c3b960f686d2),
    ("chaos/f0/pm90/seed1", 0xe6cca3bd0835310a),
    ("chaos/f0/pm90/seed2", 0x628c9f6c4ce1a483),
    ("chaos/f0/pm90/seed3", 0x0ad562a93642f8a3),
    ("chaos/f0/pm90/seed4", 0x81541e090e2ac6c3),
    ("chaos/f25/pm0/seed1", 0xfba889074c6221e8),
    ("chaos/f25/pm0/seed2", 0xd7168d76a9035155),
    ("chaos/f25/pm0/seed3", 0x915c1c429d6a6fce),
    ("chaos/f25/pm0/seed4", 0x7deb9a2a6df4dd35),
    ("chaos/f25/pm50/seed1", 0xf144fde7ed06d317),
    ("chaos/f25/pm50/seed2", 0x214c4b372628cc4a),
    ("chaos/f25/pm50/seed3", 0x6798ea60dfbad6ed),
    ("chaos/f25/pm50/seed4", 0x8fcef439201c885e),
    ("chaos/f25/pm90/seed1", 0xb55f3733ddde77c2),
    ("chaos/f25/pm90/seed2", 0x3f2843694bc259b7),
    ("chaos/f25/pm90/seed3", 0xaefb60c8beb519df),
    ("chaos/f25/pm90/seed4", 0x566db3c8f02bd068),
    ("chaos/f50/pm0/seed1", 0x4db60df723afefa9),
    ("chaos/f50/pm0/seed2", 0x64ca539a2d2d5a8a),
    ("chaos/f50/pm0/seed3", 0xbd10cc2a8698c4c4),
    ("chaos/f50/pm0/seed4", 0x373a9d017ad233bf),
    ("chaos/f50/pm50/seed1", 0xc268bb2d1de46eca),
    ("chaos/f50/pm50/seed2", 0xe9d7ee077e0d1965),
    ("chaos/f50/pm50/seed3", 0xa62a418745d8b4a6),
    ("chaos/f50/pm50/seed4", 0x37fcc25caad1dcd4),
    ("chaos/f50/pm90/seed1", 0xd3636f7830ec9029),
    ("chaos/f50/pm90/seed2", 0x99f0de6aed628656),
    ("chaos/f50/pm90/seed3", 0xa58e36e077523c46),
    ("chaos/f50/pm90/seed4", 0x213d22f73cdd786e),
    ("chaos/f100/pm0/seed1", 0x2fb429f00583212b),
    ("chaos/f100/pm0/seed2", 0xbb5e04e2f0fb6ad8),
    ("chaos/f100/pm0/seed3", 0x858fbceeec4d4db1),
    ("chaos/f100/pm0/seed4", 0xb686392226ae09ed),
    ("chaos/f100/pm50/seed1", 0x3aaf662d82f5639e),
    ("chaos/f100/pm50/seed2", 0xe04f18ea66907ca8),
    ("chaos/f100/pm50/seed3", 0xe116cfee4cc904c0),
    ("chaos/f100/pm50/seed4", 0x1bdfdf321deff8c1),
    ("chaos/f100/pm90/seed1", 0xdd30501df0cd9361),
    ("chaos/f100/pm90/seed2", 0x412271ed1a760221),
    ("chaos/f100/pm90/seed3", 0xf14b211bb935d713),
    ("chaos/f100/pm90/seed4", 0x1d38d611364fb45c),
];
