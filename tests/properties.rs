//! Property-based tests over the whole stack: for arbitrary (small)
//! scenario parameters, global invariants must hold.

use airguard::net::{Protocol, ScenarioConfig, StandardScenario};
use airguard::sim::NodeId;
use proptest::prelude::*;

proptest! {
    // Whole-simulation properties are expensive; keep the case count low
    // but the input space wide.
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn diagnosis_percentages_are_well_formed(
        pm in 0.0f64..100.0,
        seed in 1u64..500,
        protocol_correct in any::<bool>(),
    ) {
        let protocol = if protocol_correct { Protocol::Correct } else { Protocol::Dot11 };
        let r = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(protocol)
            .n_senders(4)
            .misbehavior_percent(pm)
            .sim_time_secs(2)
            .seed(seed)
            .run();
        let cd = r.diagnosis().correct_diagnosis_percent();
        let md = r.diagnosis().misdiagnosis_percent();
        prop_assert!((0.0..=100.0).contains(&cd), "correct% {cd}");
        prop_assert!((0.0..=100.0).contains(&md), "misdiag% {md}");
        if protocol == Protocol::Dot11 {
            prop_assert_eq!(cd, 0.0, "baseline never classifies");
        }
    }

    #[test]
    fn aggregate_throughput_bounded_by_capacity(
        n in 1usize..10,
        pm in 0.0f64..100.0,
        seed in 1u64..500,
    ) {
        let r = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Correct)
            .n_senders(n)
            .misbehavior_percent(pm)
            .sim_time_secs(2)
            .seed(seed)
            .run();
        let total: f64 = r
            .measured_senders
            .iter()
            .map(|&s| r.throughput.sender_throughput_bps(s, r.elapsed))
            .sum();
        prop_assert!(total <= 2.0e6, "aggregate {total} b/s > channel rate");
        let fi = r.fairness_index();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&fi));
    }

    #[test]
    fn runs_are_seed_deterministic(
        pm in 0.0f64..100.0,
        seed in 1u64..200,
    ) {
        let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Correct)
            .n_senders(3)
            .misbehavior_percent(pm)
            .sim_time_secs(1)
            .seed(seed);
        let a = cfg.run();
        let b = cfg.run();
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.throughput, b.throughput);
    }

    #[test]
    fn monitor_packet_counts_match_deliveries(
        pm in 0.0f64..90.0,
        seed in 1u64..300,
    ) {
        let r = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Correct)
            .n_senders(4)
            .misbehavior_percent(pm)
            .sim_time_secs(2)
            .seed(seed)
            .run();
        let monitor = &r.monitors[0].1;
        for sender in 1..=4u32 {
            let delivered = r
                .throughput
                .flow(NodeId::new(sender), NodeId::new(0))
                .map_or(0, |f| f.packets);
            let observed = monitor.sender(NodeId::new(sender)).map_or(0, |s| s.packets);
            prop_assert_eq!(
                delivered, observed,
                "sender {} delivered vs monitored", sender
            );
        }
    }
}
