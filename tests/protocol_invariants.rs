//! Protocol-level invariants checked through the trace bus and the
//! full simulator: frame ordering, conservation, duplicate handling,
//! retry accounting.

use airguard::core::CorrectConfig;
use airguard::mac::Selfish;
use airguard::net::topology::Flow;
use airguard::net::{NodePolicy, Simulation, SimulationConfig, Topology};
use airguard::phy::{PhyConfig, Position};
use airguard::sim::trace::Trace;
use airguard::sim::{MasterSeed, NodeId, SimDuration};

fn two_node_topology() -> Topology {
    Topology {
        positions: vec![Position::new(0.0, 0.0), Position::new(150.0, 0.0)],
        flows: vec![Flow {
            src: NodeId::new(1),
            dst: NodeId::new(0),
            rate_bps: 2_000_000,
            payload: 512,
            measured: true,
        }],
    }
}

fn correct_policies(n: u32) -> Vec<NodePolicy> {
    (0..n)
        .map(|i| {
            NodePolicy::correct(
                NodeId::new(i),
                CorrectConfig::paper_default(),
                Selfish::None,
            )
        })
        .collect()
}

fn traced_run(secs: u64) -> (Trace, airguard::net::RunReport) {
    let cfg = SimulationConfig {
        phy: PhyConfig::deterministic(),
        horizon: SimDuration::from_secs(secs),
        seed: MasterSeed::new(42),
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::new(cfg, two_node_topology(), correct_policies(2), vec![]);
    let trace = Trace::enabled();
    sim.set_trace(trace.clone());
    let report = sim.run();
    (trace, report)
}

#[test]
fn exchange_order_is_rts_cts_data_ack() {
    let (trace, _) = traced_run(1);
    // Reconstruct the global frame order from the trace and verify each
    // sender exchange appears in canonical sequence.
    let mut last = "Ack";
    for ev in trace.events_in("mac.tx") {
        let kind = if ev.detail.contains("Rts") {
            "Rts"
        } else if ev.detail.contains("Cts") {
            "Cts"
        } else if ev.detail.contains("Data") {
            "Data"
        } else {
            "Ack"
        };
        let expected_prev = match kind {
            "Rts" => "Ack",
            "Cts" => "Rts",
            "Data" => "Cts",
            _ => "Data",
        };
        assert_eq!(
            last, expected_prev,
            "frame {kind} followed {last}: {}",
            ev.detail
        );
        last = kind;
    }
    // The horizon may cut the final exchange anywhere, so no assertion on
    // the very last frame kind.
}

#[test]
fn every_data_packet_is_delivered_exactly_once() {
    let (_, report) = traced_run(2);
    let flow = report
        .throughput
        .flow(NodeId::new(1), NodeId::new(0))
        .expect("flow delivered packets");
    // CBR at 2 Mb/s offers one packet per 2048 µs; the channel sustains
    // ~2.9 ms per exchange with zero loss on a clean deterministic
    // channel, so deliveries are dense and strictly deduplicated.
    assert!(flow.packets > 500, "only {} packets", flow.packets);
    assert_eq!(flow.bytes, flow.packets * 512);
    assert_eq!(report.counters[0].duplicates, 0);
    assert_eq!(report.counters[1].retry_drops, 0);
}

#[test]
fn clean_channel_never_times_out() {
    let (_, report) = traced_run(2);
    assert_eq!(report.counters[1].cts_timeouts, 0);
    assert_eq!(report.counters[1].ack_timeouts, 0);
}

#[test]
fn rts_count_matches_exchange_count_on_clean_channel() {
    let (trace, report) = traced_run(1);
    let rts: usize = trace
        .events_in("mac.tx")
        .iter()
        .filter(|e| e.detail.contains("Rts"))
        .count();
    let delivered = report
        .throughput
        .flow(NodeId::new(1), NodeId::new(0))
        .map_or(0, |f| f.packets);
    // Every RTS leads to a delivery (no losses), and there may be at most
    // one in-flight exchange not yet completed at the horizon.
    assert!(
        (rts as i64 - delivered as i64).abs() <= 1,
        "rts={rts} delivered={delivered}"
    );
    assert_eq!(report.counters[1].rts_sent as usize, rts);
}

#[test]
fn collisions_force_retries_with_multiple_senders() {
    // Two senders colliding occasionally on a deterministic channel:
    // retries must occur, and the retry accounting must stay consistent.
    let topo = Topology::star(4, 2_000_000, 512, false);
    let cfg = SimulationConfig {
        phy: PhyConfig::deterministic(),
        horizon: SimDuration::from_secs(3),
        seed: MasterSeed::new(7),
        ..SimulationConfig::default()
    };
    let report = Simulation::new(cfg, topo, correct_policies(5), vec![]).run();
    let timeouts: u64 = report
        .counters
        .iter()
        .map(|c| c.cts_timeouts + c.ack_timeouts)
        .sum();
    assert!(timeouts > 0, "4 contending senders must collide sometimes");
    // Conservation: every sender's deliveries + in-queue + drops is
    // consistent (no packet can be delivered more often than sent).
    for sender in 1..=4u32 {
        let delivered = report
            .throughput
            .flow(NodeId::new(sender), NodeId::new(0))
            .map_or(0, |f| f.packets);
        assert!(delivered > 0, "sender {sender} starved entirely");
    }
}

#[test]
fn assigned_backoffs_are_respected_on_clean_channel() {
    // On a deterministic channel with a single sender, B_act == B_exp for
    // every exchange, so the monitor must never record a deviation.
    let (_, report) = traced_run(2);
    let monitor = &report.monitors[0].1;
    let stats = monitor.sender(NodeId::new(1)).expect("sender observed");
    assert_eq!(stats.deviations, 0);
    assert_eq!(stats.flagged_packets, 0);
    assert!(stats.packets > 500);
}

#[test]
fn nav_reset_keeps_third_party_flowing() {
    // Three nodes in a line: 0 <- 1 (flow), and node 2 overhears node 1's
    // RTS frames. If node 2 also has traffic, a stale NAV from a collided
    // exchange must not stall it (NAV-reset rule).
    let topo = Topology {
        positions: vec![
            Position::new(0.0, 0.0),
            Position::new(150.0, 0.0),
            Position::new(75.0, 100.0),
        ],
        flows: vec![
            Flow {
                src: NodeId::new(1),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
            Flow {
                src: NodeId::new(2),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
        ],
    };
    let cfg = SimulationConfig {
        phy: PhyConfig::deterministic(),
        horizon: SimDuration::from_secs(3),
        seed: MasterSeed::new(13),
        ..SimulationConfig::default()
    };
    let report = Simulation::new(cfg, topo, correct_policies(3), vec![]).run();
    for sender in [1u32, 2] {
        let bps = report
            .throughput
            .sender_throughput_bps(NodeId::new(sender), report.elapsed);
        assert!(bps > 300_000.0, "sender {sender} starved at {bps} b/s");
    }
}
