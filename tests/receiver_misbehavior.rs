//! §4.4 end-to-end: a selfish *receiver* that lowballs assignments is
//! detected by senders running the deterministic-`g` verification, and
//! the sender's defensive substitution (`max(assigned, g)`) neutralizes
//! the favouritism.

use airguard::core::monitor::{AssignmentSource, MonitorConfig};
use airguard::core::CorrectConfig;
use airguard::mac::Selfish;
use airguard::net::topology::Flow;
use airguard::net::{NodePolicy, RunReport, Simulation, SimulationConfig, Topology};
use airguard::phy::{PhyConfig, Position};
use airguard::sim::{MasterSeed, NodeId, SimDuration};

/// Two receivers, two senders. Receiver 0 serves sender 2; receiver 1
/// serves sender 3. All four nodes contend on the same channel.
fn topology() -> Topology {
    Topology {
        positions: vec![
            Position::new(0.0, 0.0),     // receiver 0
            Position::new(100.0, 0.0),   // receiver 1
            Position::new(0.0, 100.0),   // sender 2 -> 0
            Position::new(100.0, 100.0), // sender 3 -> 1
        ],
        flows: vec![
            Flow {
                src: NodeId::new(2),
                dst: NodeId::new(0),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
            Flow {
                src: NodeId::new(3),
                dst: NodeId::new(1),
                rate_bps: 2_000_000,
                payload: 512,
                measured: true,
            },
        ],
    }
}

fn g_config(verify: bool) -> CorrectConfig {
    CorrectConfig {
        monitor: MonitorConfig {
            assignment_source: AssignmentSource::DeterministicG,
            ..MonitorConfig::paper_default()
        },
        verify_receiver: verify,
        ..CorrectConfig::paper_default()
    }
}

fn run(selfish_receiver: bool, verify: bool, seed: u64) -> RunReport {
    let cfg = g_config(verify);
    let policies = vec![
        NodePolicy::correct(
            NodeId::new(0),
            cfg,
            if selfish_receiver {
                Selfish::ZeroAssignment
            } else {
                Selfish::None
            },
        ),
        NodePolicy::correct(NodeId::new(1), cfg, Selfish::None),
        NodePolicy::correct(NodeId::new(2), cfg, Selfish::None),
        NodePolicy::correct(NodeId::new(3), cfg, Selfish::None),
    ];
    Simulation::new(
        SimulationConfig {
            phy: PhyConfig::paper_default(),
            horizon: SimDuration::from_secs(5),
            seed: MasterSeed::new(seed),
            ..SimulationConfig::default()
        },
        topology(),
        policies,
        vec![],
    )
    .run()
}

fn violations_at(report: &RunReport, node: u32) -> u64 {
    report
        .receiver_violations
        .iter()
        .find(|(n, _)| *n == NodeId::new(node))
        .map_or(0, |(_, v)| *v)
}

fn flow_bps(report: &RunReport, src: u32, dst: u32) -> f64 {
    report
        .throughput
        .flow(NodeId::new(src), NodeId::new(dst))
        .map_or(0.0, |f| f.bytes as f64 * 8.0 / report.elapsed.as_secs_f64())
}

#[test]
fn honest_g_receivers_trigger_no_violations() {
    let report = run(false, true, 1);
    assert_eq!(violations_at(&report, 2), 0, "sender 2 saw violations");
    assert_eq!(violations_at(&report, 3), 0, "sender 3 saw violations");
    assert!(report.throughput.total_bytes() > 0);
}

#[test]
fn lowballing_receiver_is_detected_by_its_sender() {
    let report = run(true, true, 2);
    // Sender 2 is served by the selfish receiver 0: nearly every
    // assignment violates the g lower bound (g = 0 passes by chance for
    // ~1/32 of sequence numbers).
    assert!(
        violations_at(&report, 2) > 50,
        "sender 2 detected only {} violations",
        violations_at(&report, 2)
    );
    // Sender 3's receiver is honest.
    assert_eq!(violations_at(&report, 3), 0);
}

#[test]
fn g_substitution_neutralizes_receiver_favoritism() {
    // Without verification, the favoured flow (2 -> selfish 0) outruns the
    // honest flow; with verification the sender waits max(assigned, g) and
    // the advantage collapses.
    let unprotected = run(true, false, 3);
    let protected = run(true, true, 3);
    let ratio_unprotected = flow_bps(&unprotected, 2, 0) / flow_bps(&unprotected, 3, 1);
    let ratio_protected = flow_bps(&protected, 2, 0) / flow_bps(&protected, 3, 1);
    assert!(
        ratio_unprotected > 1.15,
        "zero assignments should favour flow 2: ratio {ratio_unprotected}"
    );
    assert!(
        ratio_protected < ratio_unprotected,
        "verification must shrink the advantage: {ratio_protected} vs {ratio_unprotected}"
    );
    assert!(
        ratio_protected < 1.15,
        "protected ratio still unfair: {ratio_protected}"
    );
}

#[test]
fn honest_senders_keep_passing_deviation_checks_under_g_assignments() {
    // The g-based assignment source must not break the main scheme: no
    // deviations, no flags for honest senders.
    let report = run(false, true, 4);
    for (_, monitor) in &report.monitors {
        for s in &monitor.senders {
            assert_eq!(s.flagged_packets, 0, "sender {} flagged", s.node);
        }
    }
}
