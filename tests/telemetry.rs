//! Golden-sequence tests for the typed telemetry layer: the structured
//! events a run emits must reproduce the paper's Fig. 1 exchange on the
//! clean path and surface the penalty machinery on the misbehaving path.

use airguard::net::{Protocol, ScenarioConfig, StandardScenario};
use airguard::obs::{ObsEvent, Record};

fn observed(pm: f64, seed: u64) -> Vec<Record> {
    let (_, sink) = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .n_senders(2)
        .misbehavior_percent(pm)
        .sim_time_secs(2)
        .seed(seed)
        .run_observed();
    sink.records()
}

#[test]
fn clean_exchange_emits_rts_cts_data_ack_in_order() {
    let records = observed(0.0, 7);
    assert!(!records.is_empty(), "observed run recorded no events");

    // Follow one sender through its first complete exchange: the typed
    // stream must contain RtsTx → CtsRx → DataTx → AckRx, in order,
    // all on the same node and for the same sequence number.
    let sender = records
        .iter()
        .find_map(|r| match r.event {
            ObsEvent::RtsTx { seq, .. } => Some((r.node, seq)),
            _ => None,
        })
        .expect("no RtsTx in a clean run");
    let (node, seq) = sender;

    let mut stage = 0usize;
    for r in &records {
        if r.node != node {
            continue;
        }
        stage = match (stage, &r.event) {
            (0, ObsEvent::RtsTx { seq: s, .. }) if *s == seq => 1,
            (1, ObsEvent::CtsRx { seq: s, .. }) if *s == seq => 2,
            (2, ObsEvent::DataTx { seq: s, .. }) if *s == seq => 3,
            (3, ObsEvent::AckRx { seq: s, .. }) if *s == seq => 4,
            _ => stage,
        };
        if stage == 4 {
            break;
        }
    }
    assert_eq!(
        stage, 4,
        "typed event stream is missing the RtsTx → CtsRx → DataTx → AckRx exchange"
    );
}

#[test]
fn misbehaving_sender_draws_penalties() {
    let records = observed(80.0, 7);
    let penalties: Vec<_> = records
        .iter()
        .filter_map(|r| match r.event {
            ObsEvent::PenaltyAdded {
                penalty_slots,
                assigned_slots,
                observed_slots,
                ..
            } => Some((penalty_slots, assigned_slots, observed_slots)),
            _ => None,
        })
        .collect();
    assert!(
        !penalties.is_empty(),
        "a pm=80 cheater must draw at least one PenaltyAdded event"
    );
    for (penalty, assigned, observed) in penalties {
        assert!(penalty > 0.0, "PenaltyAdded with non-positive penalty");
        assert!(
            observed < assigned,
            "penalty implies the cheater counted fewer slots than assigned \
             (observed {observed}, assigned {assigned})"
        );
    }
}

#[test]
fn record_timestamps_are_monotonic() {
    let records = observed(0.0, 7);
    assert!(
        records.windows(2).all(|w| w[0].time_us <= w[1].time_us),
        "telemetry must be emitted in virtual-time order"
    );
}
