//! Offline stand-in for `criterion`.
//!
//! Supports the API surface the bench harness uses (`bench_function`,
//! `benchmark_group`, `sample_size`, `throughput`, `iter`,
//! `criterion_group!`/`criterion_main!`) with two execution modes:
//!
//! * **bench mode** (`cargo bench`, detected via the `--bench` argument
//!   cargo passes): times each closure over a calibrated number of
//!   iterations and prints mean ns/iter plus derived throughput;
//! * **smoke mode** (`cargo test`, no `--bench` argument): runs each
//!   closure once so every benchmark's code path stays exercised by
//!   tier-1 without paying measurement time.
//!
//! No statistics beyond the mean are computed — for publishable numbers,
//! swap the workspace dependency back to upstream criterion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Work-amount annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    mode: Mode,
    report: &'a mut Report,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Bench,
    Smoke,
}

#[derive(Debug, Default)]
struct Report {
    mean_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Calls `routine` repeatedly and records the mean wall-clock cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(routine());
                self.report.iters = 1;
            }
            Mode::Bench => {
                // Calibrate: grow the iteration count until the batch
                // takes long enough to time meaningfully (~200 ms cap).
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(200) || iters >= 1 << 20 {
                        self.report.iters = iters;
                        self.report.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
                        return;
                    }
                    iters = iters.saturating_mul(2);
                }
            }
        }
    }
}

/// Top-level harness state; one per bench binary.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Smoke,
            filter: None,
        }
    }
}

impl Criterion {
    /// Builds a harness configured from the process arguments (cargo
    /// passes `--bench` under `cargo bench`; a bare positional argument
    /// filters benchmark names, as with upstream criterion).
    #[must_use]
    pub fn new_from_args() -> Self {
        let mut mode = Mode::Smoke;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => mode = Mode::Bench,
                "--test" => mode = Mode::Smoke,
                a if !a.starts_with('-') => filter = Some(a.to_owned()),
                _ => {}
            }
        }
        Criterion { mode, filter }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(&id.into(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut report = Report::default();
        let mut b = Bencher {
            mode: self.mode,
            report: &mut report,
        };
        f(&mut b);
        match self.mode {
            Mode::Smoke => println!("bench {id}: ok (smoke run)"),
            Mode::Bench => {
                let per = match throughput {
                    Some(Throughput::Elements(n)) if report.mean_ns > 0.0 => {
                        let rate = n as f64 * 1e9 / report.mean_ns;
                        format!(", {rate:.0} elem/s")
                    }
                    Some(Throughput::Bytes(n)) if report.mean_ns > 0.0 => {
                        let rate = n as f64 * 1e9 / report.mean_ns;
                        format!(", {rate:.0} B/s")
                    }
                    _ => String::new(),
                };
                println!(
                    "bench {id}: {:.0} ns/iter ({} iters{per})",
                    report.mean_ns, report.iters
                );
            }
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; this harness auto-calibrates.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark named `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $fun(criterion); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new_from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("unit", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_compose_names_and_filters() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: Some("keep".into()),
        };
        let mut kept = 0u32;
        let mut skipped = 0u32;
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_function("keep_this", |b| b.iter(|| kept += 1));
        g.bench_function("drop_this", |b| b.iter(|| skipped += 1));
        g.finish();
        assert_eq!((kept, skipped), (1, 0));
    }
}
