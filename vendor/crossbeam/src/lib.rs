//! Offline stand-in for `crossbeam` — only the `thread::scope` API the
//! bench harness uses, delegating to `std::thread::scope` (stable since
//! Rust 1.63, which post-dates crossbeam's scoped threads). Crossbeam's
//! result-based panic reporting is preserved: a panicking worker surfaces
//! as `Err` from [`thread::scope`] rather than an unwinding panic.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with crossbeam's closure and error signatures.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle to a thread spawned inside a [`scope`].
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    /// Spawns scoped threads; mirrors `crossbeam::thread::Scope`, whose
    /// `spawn` closures receive the scope again for nested spawning.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope whose spawned threads are all joined before
    /// `scope` returns. Returns `Err` with the panic payload if any
    /// worker (or `f` itself) panicked, like crossbeam.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope re-raises unjoined worker panics as its own
        // panic once all threads finish; converting that to Err restores
        // crossbeam's contract.
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn workers_share_borrowed_state() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        thread::scope(|scope| {
            for (slot, &v) in out.iter_mut().zip(&data) {
                scope.spawn(move |_| *slot = v * 10);
            }
        })
        .expect("no worker panicked");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = thread::scope(|scope| {
            scope.spawn(|_| panic!("worker failed"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_passed_scope() {
        let r = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7u32).join().expect("inner join"))
                .join()
                .expect("outer join")
        })
        .expect("scope ok");
        assert_eq!(r, 7);
    }
}
