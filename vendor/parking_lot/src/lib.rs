//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()` returns
//! the guard directly instead of a `LockResult`, and a poisoned lock (a
//! panic while held) is transparently recovered, matching parking_lot's
//! no-poisoning semantics. Performance characteristics are std's, which is
//! irrelevant at this workspace's contention levels (the trace bus takes
//! one uncontended lock per recorded event).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guards returned by [`RwLock::read`] / [`RwLock::write`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// See [`RwLockReadGuard`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Recovers from
    /// poisoning, as parking_lot has no poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose acquisition methods cannot fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the panic above must not wedge the lock.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.try_lock().map(|g| *g), Some(5));
    }
}
