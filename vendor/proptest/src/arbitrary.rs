//! `any::<T>()` — full-domain generation for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;
use rand::{RngExt, StandardUniform};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: StandardUniform> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
