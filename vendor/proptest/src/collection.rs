//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// Length bounds for generated collections (half-open, like upstream's
/// conversion from `Range<usize>`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Generates vectors of `elem`-produced values with a length in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
