//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert*`, [`prop_oneof!`], [`strategy::Just`], range and tuple
//! strategies, [`collection::vec`], and [`arbitrary::any`].
//!
//! Two deliberate simplifications versus upstream:
//!
//! * **No shrinking.** A failing case panics with the case number; rerun
//!   with the same build to reproduce (generation is fully deterministic,
//!   keyed on the test's module path and name — there is no RNG-from-OS
//!   entropy anywhere, in keeping with this workspace's determinism rules).
//! * **Fewer default cases** (64, overridable via `PROPTEST_CASES` or
//!   `ProptestConfig { cases, .. }`), keeping tier-1 test time bounded.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset upstream's macro accepts that this
/// workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(expr)]          // optional
///     #[test]
///     fn name(pat in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner_rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);
                )+
                let run = || $body;
                if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest {}: failed at case {}/{} (deterministic; rerun reproduces)",
                        stringify!($name), case + 1, config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that participates in a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` that participates in a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` that participates in a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($strat))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![(0u8..16).prop_map(Op::Push), Just(Op::Pop)]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3u32..17, f in -1.0f64..2.0) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-1.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_any_compose(
            pair in (0usize..4, any::<bool>()),
            word in any::<u64>(),
        ) {
            prop_assert!(pair.0 < 4);
            let _: bool = pair.1;
            let _ = word;
        }

        #[test]
        fn vec_strategy_respects_size(ops in crate::collection::vec(op_strategy(), 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for op in ops {
                if let Op::Push(v) = op {
                    prop_assert!(v < 16);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        #[test]
        fn config_override_applies(x in 0u8..10) {
            // 3 cases only; the body just has to run.
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let mut a = TestRng::deterministic("det-check");
        let mut b = TestRng::deterministic("det-check");
        for _ in 0..16 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
