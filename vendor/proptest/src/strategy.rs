//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{RngExt, SampleUniform};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy producing clones of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among boxed strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    variants: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union with no variants yet; [`Union::or`] adds them.
    #[must_use]
    pub fn empty() -> Self {
        Union {
            variants: Vec::new(),
        }
    }

    /// Adds one variant strategy.
    #[must_use]
    pub fn or(mut self, strat: impl Strategy<Value = T> + 'static) -> Self {
        self.variants.push(Box::new(strat));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.variants.is_empty(), "prop_oneof! needs >= 1 variant");
        let idx = rng.random_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}
