//! Test-runner configuration and the deterministic generation RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!`-block configuration. Only `cases` is honored by this
/// shim; the other fields exist so upstream-style struct-update
/// construction (`ProptestConfig { cases: 12, ..Default::default() }`)
/// compiles unchanged.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for upstream compatibility; rejection sampling is not
    /// implemented.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
            max_global_rejects: 0,
        }
    }
}

/// The generator behind every strategy draw.
///
/// Seeded purely from the test's identity (module path + name), never from
/// OS entropy or time, so every run of the binary generates the identical
/// case sequence — a failing property test reproduces by rerunning it.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Derives the RNG for the named test.
    #[must_use]
    pub fn deterministic(test_ident: &str) -> Self {
        // FNV-1a over the identifier, decorrelated by a fixed tweak.
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for &b in test_ident.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ 0x0005_DEEC_E66D_u64),
        }
    }
}

impl rand::rand_core::TryRng for TestRng {
    type Error = core::convert::Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok(rand::Rng::next_u32(&mut self.inner))
    }

    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(rand::Rng::next_u64(&mut self.inner))
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
        rand::Rng::fill_bytes(&mut self.inner, dest);
        Ok(())
    }
}
