//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the API subset airguard consumes:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++, seeded via splitmix64 like `SeedableRng::seed_from_u64`);
//! * [`SeedableRng::seed_from_u64`];
//! * the infallible [`Rng`] core trait (`next_u32`/`next_u64`/`fill_bytes`);
//! * [`rand_core::TryRng`], with the blanket rule that an infallible
//!   `TryRng` is a full [`Rng`] (and therefore gets [`RngExt`]);
//! * [`RngExt::random`], [`RngExt::random_range`], [`RngExt::random_bool`].
//!
//! The generator is *not* the upstream ChaCha12 `StdRng`, so absolute
//! sequences differ from the real crate — but every sequence is a pure
//! function of the seed, which is the property the reproduction relies on.
//! See DESIGN.md, "Static analysis & determinism guarantees".

#![forbid(unsafe_code)]

use core::convert::Infallible;

pub mod rand_core {
    //! The fallible-generator layer of rand 0.10's `rand_core`.

    /// A random source that may fail. Infallible sources (every source in
    /// this workspace) get [`crate::Rng`] for free via a blanket impl.
    pub trait TryRng {
        /// Error reported by a failed draw.
        type Error;
        /// Draws 32 uniformly random bits.
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
        /// Draws 64 uniformly random bits.
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
        /// Fills `dest` with uniformly random bytes.
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
    }
}

/// An infallible source of randomness (rand's `RngCore`, renamed as in 0.10).
pub trait Rng {
    /// Draws 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Draws 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T> Rng for T
where
    T: rand_core::TryRng<Error = Infallible>,
{
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => (),
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64 finalizer: expands one 64-bit seed into decorrelated state
/// words.
const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{rand_core::TryRng, splitmix64, SeedableRng};
    use core::convert::Infallible;

    /// Deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`.
    ///
    /// Passes BigCrush-class statistical batteries in its upstream form;
    /// more than adequate for the shadowing/backoff draws here. Not
    /// cryptographically secure (neither is any use of randomness in this
    /// workspace).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                // splitmix64 sequence, as recommended by the xoshiro
                // authors for state initialisation.
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                *word = splitmix64(x);
            }
            // An all-zero state would be a fixed point; splitmix64 of a
            // counter can't produce four zero outputs, but keep the guard
            // explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl TryRng for StdRng {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.step() >> 32) as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            Ok(self.step())
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            for chunk in dest.chunks_mut(8) {
                let word = self.step().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
            Ok(())
        }
    }
}

/// Types drawable uniformly from their full domain via
/// [`RngExt::random`] (rand's `StandardUniform` distribution).
pub trait StandardUniform: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable from a sub-range via [`RngExt::random_range`].
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)` when `inclusive` is false, `[lo, hi]` when
    /// true. Callers guarantee a non-empty range.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    // Either the full u64 domain (inclusive wrap) or an
                    // empty range, which callers must not pass.
                    return rng.next_u64() as $t;
                }
                // Multiply-shift range reduction (Lemire); the residual
                // bias over a 64-bit draw is below 2^-32 for every span
                // used in this workspace.
                let draw = (u128::from(rng.next_u64()) * u128::from(span)) >> 64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let draw = (u128::from(rng.next_u64()) * u128::from(span)) >> 64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit: $t = StandardUniform::from_rng(rng);
                // lo + unit * (hi - lo); clamp guards the (measure-zero)
                // rounding case where the product lands on `hi`.
                let v = unit.mul_add(hi - lo, lo);
                if v >= hi { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// Ergonomic sampling methods, available on every [`Rng`] (rand 0.10's
/// `Rng` extension trait, here under its pre-release name `RngExt`).
pub trait RngExt: Rng {
    /// Draws a value from the standard distribution of `T` (full integer
    /// domains, `[0, 1)` for floats, fair coin for `bool`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from `range`, which must be non-empty.
    fn random_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let unit: f64 = self.random();
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_draws_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.random_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.random_range(0u32..=3);
            assert!(w <= 3);
            let f = rng.random_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&f));
            let u = rng.random_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<u8> = (0..2000).map(|_| rng.random_range(0u8..=3)).collect();
        for target in 0u8..=3 {
            assert!(draws.contains(&target), "never drew {target}");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
