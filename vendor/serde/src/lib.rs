//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public config and
//! report types so downstream consumers *can* serialize them, but nothing in
//! the repo calls a serializer — the derive is a pure marker. With no
//! crates.io access, this shim keeps those derives compiling: the traits are
//! empty and blanket-implemented, and the derive macros (behind the same
//! `derive` feature flag as upstream) expand to nothing.
//!
//! If real serialization is ever needed, point `[workspace.dependencies]`
//! back at crates.io serde; no call site changes.

#![forbid(unsafe_code)]

/// Marker for types whose values can be serialized.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types whose values can be deserialized.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    fn takes_serialize<T: crate::Serialize>(_: &T) {}
    fn takes_deserialize<T: for<'de> crate::Deserialize<'de>>(_: &T) {}

    #[test]
    fn every_type_is_a_marker_instance() {
        takes_serialize(&42u8);
        takes_serialize(&vec![1.0f64]);
        takes_deserialize(&"owned".to_owned());
    }
}
