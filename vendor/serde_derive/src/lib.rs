//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! shim. The shim's traits are blanket-implemented for every type, so the
//! derive has nothing to emit; it exists so `#[derive(Serialize)]` and
//! `#[serde(...)]` attributes resolve.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
